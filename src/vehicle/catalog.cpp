#include "vehicle/catalog.hpp"

#include <array>
#include <cassert>
#include <set>
#include <stdexcept>

#include "util/checkpoint.hpp"
#include "util/rng.hpp"

namespace dpr::vehicle {

/// --- Pools the catalog builder and vehicle::Generator draw from ------------

const std::vector<UdsSignalTemplate>& uds_signal_templates() {
  using P = RawSignal::Pattern;
  static const std::vector<UdsSignalTemplate> pool = {
      {"Vehicle Speed", "km/h", 1, PropFormula::linear(1.0), 0, 220,
       P::kSine},
      {"Engine Coolant Temperature", "degC", 2,
       PropFormula::linear(0.0075, -48.0), 6400, 23200, P::kRandomWalk},
      {"Engine Speed", "rpm", 2, PropFormula::linear(0.25), 3200, 26000,
       P::kSine},
      {"Throttle Position", "%", 2, PropFormula::linear(0.01), 0, 10000,
       P::kRandomWalk},
      {"Battery Voltage", "V", 2, PropFormula::linear(0.001), 11000, 14800,
       P::kRandomWalk},
      {"Fuel Rail Pressure", "MPa", 2, PropFormula::linear(0.01), 100, 20000,
       P::kRandomWalk},
      {"Intake Air Temperature", "degC", 2,
       PropFormula::linear(0.01, -40.0), 4000, 12000, P::kRandomWalk},
      {"Boost Pressure", "kPa", 2, PropFormula::linear(0.1), 900, 2500,
       P::kRandomWalk},
      {"Brake Pressure", "bar", 2, PropFormula::linear(0.01), 0, 25000,
       P::kRandomWalk},
      {"Fuel Tank Level", "%", 1, PropFormula::linear(100.0 / 255.0), 0, 255,
       P::kRandomWalk},
      {"Engine Oil Temperature", "degC", 2,
       PropFormula::linear(0.02, -40.0), 4000, 9000, P::kRandomWalk},
      {"Injection Quantity Cylinder 1", "mg/stroke", 2,
       PropFormula::linear(0.01), 0, 9000, P::kRandomWalk},
      {"Lambda Sensor Voltage", "V", 2, PropFormula::linear(0.0005), 0,
       4000, P::kRandomWalk},
      {"Mass Air Flow", "g/s", 2, PropFormula::linear(0.01), 0, 40000,
       P::kSine},
      {"Steering Angle", "deg", 2, PropFormula::linear(0.1, -780.0), 2000,
       13600, P::kSine},
      {"Transmission Oil Temperature", "degC", 2,
       PropFormula::linear(0.02, -50.0), 3500, 10000, P::kRandomWalk},
      {"Accelerator Pedal Position", "%", 1, PropFormula::linear(0.4), 0,
       250, P::kRandomWalk},
      {"Wheel Speed Front Left", "km/h", 2, PropFormula::linear(1.0 / 128.0),
       0, 28000, P::kSine},
      {"Ambient Temperature", "degC", 1, PropFormula::linear(0.5, -40.0), 60,
       160, P::kRandomWalk},
      {"Fuel Consumption Rate", "l/h", 2, PropFormula::linear(0.05), 0, 900,
       P::kRandomWalk},
      {"Exhaust Gas Temperature", "degC", 2, PropFormula::linear(0.1, -100.0),
       2000, 9000, P::kRandomWalk},
      // Nonlinear cases: GP must beat linear regression here (§4.4).
      {"Dynamic Air Load", "N", 1, PropFormula::quadratic(0.004, 0.0, 0.0),
       10, 250, P::kRandomWalk},
      {"Charge Air Ratio", "", 1, PropFormula::quadratic(0.0002, 0.05, 1.0),
       10, 240, P::kRandomWalk},
      {"Generator Load", "A", 2, PropFormula::linear(0.1, -204.8), 100,
       4000, P::kRandomWalk},
      {"Odometer Fraction", "km", 2, PropFormula::linear(10.0), 0, 6000,
       P::kConstant},
      {"Yaw Rate", "deg/s", 2, PropFormula::two_byte(0.64, 0.0025, -81.92),
       0, 65535, P::kSine, /*independent_bytes=*/true},
      {"Oil Pressure", "kPa", 1, PropFormula::linear(4.0), 10, 200,
       P::kRandomWalk},
      {"Cabin Temperature", "degC", 1, PropFormula::linear(0.25, -10.0), 60,
       220, P::kRandomWalk},
      // Product forms over both raw bytes (linear regression cannot fit
      // these — the §4.4 contrast).
      {"Fuel Trim Product", "", 2, PropFormula::product(0.004), 0x2020,
       0xE0E0, P::kRandomWalk, /*independent_bytes=*/true},
      {"Knock Sensor Energy", "mJ", 2, PropFormula::product(0.01, 2.0),
       0x1010, 0xD0D0, P::kRandomWalk, /*independent_bytes=*/true},
      {"Turbo Work Index", "", 2, PropFormula::product(0.002, -5.0),
       0x3030, 0xF0F0, P::kSine, /*independent_bytes=*/true},
      {"Suspension Travel", "mm", 1,
       PropFormula::quadratic(0.0015, -0.2, 30.0), 20, 250, P::kRandomWalk},
  };
  return pool;
}

const std::vector<const char*>& enum_name_templates() {
  static const std::vector<const char*> pool = {
      "Door Status Front Left", "Door Status Front Right",
      "Door Status Rear Left", "Door Status Rear Right", "Trunk Status",
      "Hood Status", "Ignition Status", "Brake Light Switch",
      "Clutch Switch", "Seat Belt Driver", "Seat Belt Passenger",
      "AC Compressor State", "Headlight Status", "Turn Signal State",
      "Gear Position", "Cruise Control State", "ESP Status",
      "Airbag Status", "Glow Plug Status", "DPF Regeneration State",
      "Parking Brake Status", "Fuel Pump State", "Central Lock Status",
      "Rain Sensor State", "Light Sensor State", "Wiper State",
      "Oil Pressure Warning", "Coolant Level Warning",
  };
  return pool;
}

const std::vector<KwpEsvTemplate>& kwp_esv_templates() {
  using P = RawSignal::Pattern;
  static const std::vector<KwpEsvTemplate> pool = {
      // The paper's worked example: type 0x01 engine RPM. X0 is the
      // per-block scaling byte; on several blocks it varies with load,
      // making the product genuinely nonlinear (LR fails, §4.4).
      {0x01, "Engine Speed", "rpm", 0x40, 0xE0, 8, 250, P::kSine},
      // Vehicle speed with X0 pinned to 0x64 -> collapses to Y = X1 (§4.3).
      {0x07, "Vehicle Speed", "km/h", 0x64, 0x64, 0, 220, P::kSine},
      {0x05, "Coolant Temperature", "degC", 0x0A, 0x0A, 60, 230,
       P::kRandomWalk},
      {0x06, "Battery Voltage", "V", 0x5F, 0x5F, 100, 160, P::kRandomWalk},
      {0x02, "Engine Load", "%", 0xFA, 0xFA, 0, 200, P::kRandomWalk},
      // Torque assistance: X1 flips around 0x80, X0 carries magnitude
      // (the sign-flip case discussed in §4.3).
      {0x17, "Torque Assistance", "Nm", 10, 220, 0x7F, 0x81, P::kToggle},
      // Lateral acceleration with X0 always 0x00 — the degenerate case
      // that makes the inferred formula single-variable (§4.3).
      {0x1B, "Lateral Acceleration", "deg", 0x00, 0x00, 0, 255, P::kSine},
      {0x12, "Intake Manifold Pressure", "mbar", 0x19, 0x19, 0, 250,
       P::kRandomWalk},
      {0x16, "Injection Timing", "ms", 0x20, 0xA0, 0, 255, P::kRandomWalk},
      {0x19, "Mass Air Flow", "g/s", 0x30, 0xC0, 0, 255, P::kSine},
      {0x1A, "Temperature Difference", "degC", 0x28, 0x28, 40, 255,
       P::kRandomWalk},
      {0x21, "Throttle Angle", "%", 0x00, 0x00, 0, 200, P::kRandomWalk},
      {0x22, "Engine Power", "kW", 0x50, 0x50, 100, 250, P::kRandomWalk},
      {0x23, "Fuel Consumption", "l/h", 0x10, 0x90, 0, 240, P::kRandomWalk},
      {0x31, "NOx Mass Flow", "mg/h", 0x28, 0xB8, 0, 255, P::kRandomWalk},
      {0x08, "Generic Scaled Value", "", 0x14, 0x94, 0, 255, P::kRandomWalk},
      {0x0F, "Idle Stabilization", "ms", 0x20, 0x20, 0, 255, P::kRandomWalk},
      {0x15, "Sensor Supply Voltage", "V", 0x60, 0x60, 40, 250,
       P::kRandomWalk},
  };
  return pool;
}

const std::vector<ActuatorTemplate>& actuator_templates() {
  static const std::vector<ActuatorTemplate> pool = {
      // Fog lights: one byte duration, one byte side (§4.5 example).
      {"Fog Light Left", {0x05, 0x01, 0x00, 0x00}},
      {"Fog Light Right", {0x03, 0x00, 0x00, 0x00}},
      {"High Beam", {0x01, 0x00, 0x00, 0x00}},
      {"Low Beam", {0x01, 0x00, 0x00, 0x00}},
      {"Turn Signal Left", {0x05, 0x01, 0x00, 0x00}},
      {"Turn Signal Right", {0x05, 0x02, 0x00, 0x00}},
      {"Front Wiper", {0x02, 0x00, 0x00, 0x00}},
      {"Rear Wiper", {0x02, 0x00, 0x00, 0x00}},
      {"Door Lock All", {0x01, 0x00, 0x00, 0x00}},
      {"Door Unlock All", {0x00, 0x00, 0x00, 0x00}},
      {"Trunk Release", {0x01, 0x00, 0x00, 0x00}},
      {"Window Driver", {0x64, 0x00, 0x00, 0x00}},
      {"Window Passenger", {0x64, 0x00, 0x00, 0x00}},
      {"Horn", {0x01, 0x00, 0x00, 0x00}},
      {"Fuel Pump Relay", {0x01, 0x00, 0x00, 0x00}},
      {"Radiator Fan", {0x50, 0x00, 0x00, 0x00}},
      {"Dashboard Illumination", {0x64, 0x00, 0x00, 0x00}},
      {"Central Lock", {0x01, 0x00, 0x00, 0x00}},
      {"Mirror Heater", {0x01, 0x00, 0x00, 0x00}},
      {"Seat Heater Left", {0x03, 0x00, 0x00, 0x00}},
      {"Seat Heater Right", {0x03, 0x00, 0x00, 0x00}},
      {"Sunroof", {0x32, 0x00, 0x00, 0x00}},
      {"Interior Light", {0x05, 0x00, 0x00, 0x00}},
      {"Idle Speed Actuator", {0x20, 0x00, 0x00, 0x00}},
      {"EGR Valve", {0x40, 0x00, 0x00, 0x00}},
      {"Throttle Actuator", {0x30, 0x00, 0x00, 0x00}},
      {"Tachometer Sweep", {0x10, 0x00, 0x00, 0x00}},
      {"Speedometer Sweep", {0x10, 0x00, 0x00, 0x00}},
      {"Washer Pump", {0x02, 0x00, 0x00, 0x00}},
      {"Headlight Range Motor", {0x14, 0x00, 0x00, 0x00}},
      {"Hazard Lights", {0x05, 0x00, 0x00, 0x00}},
      {"Exterior Mirror Fold", {0x01, 0x00, 0x00, 0x00}},
  };
  return pool;
}

namespace {

/// --- Per-car configuration (Tables 3, 6, 11) --------------------------------

struct CarConfig {
  CarId id;
  const char* label;
  const char* model;
  Protocol protocol;
  TransportKind transport;
  IoService io_service;
  const char* tool;
  std::size_t formula_count;  // Table 6 "#ESV (formula)"
  std::size_t enum_count;     // Table 6 "#ESV (Enum)"
  std::size_t ecr_count;      // Table 11 "#ECR" (0 = not in Table 11)
  bool attack_targets;        // used in Table 13 replay experiment
};

const std::array<CarConfig, 18>& car_configs() {
  static const std::array<CarConfig, 18> configs = {{
      {CarId::kA, "Car A", "Skoda Octavia", Protocol::kUds,
       TransportKind::kIsoTp, IoService::kUds2F, "LAUNCH X431", 28, 0, 11,
       false},
      {CarId::kB, "Car B", "Volkswagen Magotan", Protocol::kKwp2000,
       TransportKind::kVwTp20, IoService::kKwp30, "VCDS", 8, 0, 0, false},
      {CarId::kC, "Car C", "Volkswagen Lavida", Protocol::kKwp2000,
       TransportKind::kVwTp20, IoService::kKwp30, "LAUNCH X431", 5, 0, 0,
       false},
      {CarId::kD, "Car D", "Lexus NX300", Protocol::kUds,
       TransportKind::kIsoTp, IoService::kKwp30, "Techstream", 12, 5, 5,
       true},
      {CarId::kE, "Car E", "Mini Cooper R56", Protocol::kUds,
       TransportKind::kBmwFraming, IoService::kKwp30, "AUTEL 919", 5, 4, 3,
       false},
      {CarId::kF, "Car F", "Mini Cooper R59", Protocol::kUds,
       TransportKind::kBmwFraming, IoService::kKwp30, "AUTEL 919", 8, 5, 5,
       false},
      {CarId::kG, "Car G", "BMW i3", Protocol::kUds,
       TransportKind::kBmwFraming, IoService::kKwp30, "AUTEL 919", 5, 22, 0,
       true},
      {CarId::kH, "Car H", "RongWei MARVEL X", Protocol::kUds,
       TransportKind::kIsoTp, IoService::kUds2F, "AUTEL 919", 5, 13, 6,
       false},
      {CarId::kI, "Car I", "Changan Eado", Protocol::kUds,
       TransportKind::kIsoTp, IoService::kUds2F, "AUTEL 919", 11, 0, 10,
       false},
      {CarId::kJ, "Car J", "BMW 532Li", Protocol::kUds,
       TransportKind::kBmwFraming, IoService::kKwp30, "AUTEL 919", 20, 20,
       27, false},
      {CarId::kK, "Car K", "Volkswagen Passat", Protocol::kKwp2000,
       TransportKind::kIsoTp, IoService::kKwp30, "AUTEL 919", 41, 0, 0,
       false},
      {CarId::kL, "Car L", "Toyota Corolla", Protocol::kUds,
       TransportKind::kIsoTp, IoService::kKwp30, "AUTEL 919", 29, 20, 0,
       true},
      {CarId::kM, "Car M", "Peugeot 308", Protocol::kUds,
       TransportKind::kIsoTp, IoService::kUds2F, "AUTEL 919", 4, 14, 0,
       false},
      {CarId::kN, "Car N", "Kia k2 (UC)", Protocol::kUds,
       TransportKind::kIsoTp, IoService::kUds2F, "AUTEL 919", 26, 19, 21,
       true},
      {CarId::kO, "Car O", "Ford Kuga", Protocol::kUds,
       TransportKind::kIsoTp, IoService::kUds2F, "AUTEL 919", 18, 9, 4,
       false},
      {CarId::kP, "Car P", "Honda Accord", Protocol::kUds,
       TransportKind::kIsoTp, IoService::kUds2F, "AUTEL 919", 7, 6, 0,
       false},
      {CarId::kQ, "Car Q", "Nissan Teana", Protocol::kUds,
       TransportKind::kIsoTp, IoService::kKwp30, "AUTEL 919", 18, 17, 32,
       false},
      {CarId::kR, "Car R", "Audi A4L", Protocol::kUds,
       TransportKind::kIsoTp, IoService::kUds2F, "AUTEL 919", 40, 2, 0,
       false},
  }};
  return configs;
}

const char* ecu_name(std::size_t index) {
  static const std::array<const char*, 5> names = {
      "Engine", "Main Body", "ABS/ESP", "Instrument Cluster", "Gateway"};
  return names[index % names.size()];
}

/// Signals the paper singles out (Table 7 dashboard validation, Table 13
/// attack reads); installed at the front of the car's signal list.
std::vector<UdsSignalSpec> special_uds_signals(CarId id) {
  std::vector<UdsSignalSpec> specials;
  switch (id) {
    case CarId::kF:
      // Table 7: Car F engine speed, Y = X.
      specials.push_back(UdsSignalSpec{0, "Engine Speed", "rpm", 2,
                                       PropFormula::linear(1.0), 800, 6500,
                                       RawSignal::Pattern::kSine});
      break;
    case CarId::kL:
      // Table 7: Car L coolant temperature, Y = 0.5 X.
      specials.push_back(UdsSignalSpec{0, "Coolant Temperature", "degC", 1,
                                       PropFormula::linear(0.5), 100, 240,
                                       RawSignal::Pattern::kRandomWalk});
      break;
    case CarId::kR:
      // Table 7: Car R engine speed, Y = 64.1 X0 + 0.241 X1.
      {
        UdsSignalSpec spec{0, "Engine Speed", "rpm", 2,
                           PropFormula::two_byte(64.1, 0.241, 0.0),
                           0x0C00, 0x65FF, RawSignal::Pattern::kSine};
        spec.independent_bytes = true;
        specials.push_back(std::move(spec));
      }
      break;
    case CarId::kG:
      // Table 13: BMW i3 brake pressure / accelerator position reads.
      specials.push_back(UdsSignalSpec{0xDBE5, "Brake Pressure", "bar", 2,
                                       PropFormula::linear(0.01), 0, 25000,
                                       RawSignal::Pattern::kRandomWalk});
      specials.push_back(UdsSignalSpec{0xDE9C, "Accelerator Position", "%",
                                       1, PropFormula::linear(0.4), 0, 250,
                                       RawSignal::Pattern::kRandomWalk});
      break;
    default:
      break;
  }
  return specials;
}

/// Attack actuators of Table 13 for the four demo vehicles.
std::vector<ActuatorSpec> special_actuators(CarId id) {
  std::vector<ActuatorSpec> list;
  switch (id) {
    case CarId::kG:  // BMW i3: light controls (local-id service)
      list.push_back({0x31, "High Beam (FLEL)", {0x03, 0x00}});
      list.push_back({0x32, "Low Beam (FLEL)", {0x01, 0x00}});
      list.push_back({0x33, "Turn Light (KOMBI)", {0x13, 0x00}});
      break;
    case CarId::kD:  // Lexus NX300: cluster overrides
      list.push_back({0x01, "Displayed Speed (KOMBI)", {0x10, 0x00}});
      list.push_back({0x02, "Displayed Engine Speed (KOMBI)", {0x08, 0x00}});
      break;
    case CarId::kL:  // Toyota Corolla: body controls (service 0x30)
      list.push_back({0x11, "Unlock All Doors", {0x00, 0x00}});
      list.push_back({0x1C, "Front Wiper", {0x01, 0x00}});
      list.push_back({0x1D, "Trunk Unlock", {0x00, 0x00}});
      break;
    case CarId::kN:  // Kia k2: central lock / dashboard lights via 0x2F
      list.push_back({0xB003, "Central Lock", {0x01, 0x00}});
      list.push_back({0xB004, "Dashboard Lights", {0x01, 0x00}});
      break;
    default:
      break;
  }
  return list;
}

CarSpec build_car(const CarConfig& config) {
  CarSpec spec;
  spec.id = config.id;
  spec.label = config.label;
  spec.model = config.model;
  spec.protocol = config.protocol;
  spec.transport = config.transport;
  spec.io_service = config.io_service;
  spec.tool = config.tool;
  spec.formula_esv_count = config.formula_count;
  spec.enum_esv_count = config.enum_count;
  spec.ecr_count = config.ecr_count;

  util::Rng rng(0xD00D0000u + static_cast<std::uint64_t>(config.id));

  const std::size_t total_signals = config.formula_count + config.enum_count;
  const std::size_t n_ecus =
      std::max<std::size_t>(2, std::min<std::size_t>(4, total_signals / 10));
  for (std::size_t e = 0; e < n_ecus; ++e) {
    EcuSpec ecu;
    ecu.name = ecu_name(e);
    ecu.address = static_cast<std::uint8_t>(0x12 + 0x10 * e);
    if (config.transport == TransportKind::kBmwFraming) {
      ecu.request_id = 0x6F1;  // shared tester id; target in byte 0
      ecu.response_id = 0x640 + ecu.address;
    } else if (e == 0 && config.protocol == Protocol::kUds) {
      ecu.request_id = 0x7E0;
      ecu.response_id = 0x7E8;
    } else {
      ecu.request_id = 0x710 + 2 * static_cast<std::uint32_t>(e);
      ecu.response_id = ecu.request_id + 1;
    }
    ecu.supports_obd = (e == 0);
    spec.ecus.push_back(std::move(ecu));
  }

  // --- Readable signals ----------------------------------------------------
  if (config.protocol == Protocol::kUds) {
    std::vector<UdsSignalSpec> signals = special_uds_signals(config.id);
    const auto& pool = uds_signal_templates();
    // Offset the pool start per car so different cars get different mixes.
    std::size_t cursor = static_cast<std::size_t>(config.id) * 7;
    std::size_t consecutive_skips = 0;
    while (signals.size() < config.formula_count) {
      UdsSignalSpec sig;
      const auto& entry = pool[cursor % pool.size()];
      ++cursor;
      // Skip pool entries that duplicate an existing signal's name; once
      // a full pool pass yields nothing new (cars with more signals than
      // pool entries), reuse names with an index suffix instead.
      bool duplicate = false;
      for (const auto& s : signals) {
        if (s.name == entry.name) duplicate = true;
      }
      if (duplicate && ++consecutive_skips <= pool.size()) continue;
      consecutive_skips = 0;
      sig.name = duplicate ? std::string(entry.name) + " #" +
                                 std::to_string(signals.size())
                           : entry.name;
      sig.unit = entry.unit;
      sig.data_bytes = entry.bytes;
      sig.formula = entry.formula;
      sig.raw_lo = entry.lo;
      sig.raw_hi = entry.hi;
      sig.pattern = entry.pattern;
      sig.independent_bytes = entry.independent_bytes;
      signals.push_back(std::move(sig));
    }
    for (std::size_t i = 0; i < config.enum_count; ++i) {
      UdsSignalSpec sig;
      sig.name = enum_name_templates()[i % enum_name_templates().size()];
      sig.unit = "";
      sig.data_bytes = 1;
      sig.formula = PropFormula::enumeration();
      sig.raw_lo = 0;
      sig.raw_hi = static_cast<std::uint32_t>(1 + rng.uniform_int(0, 2));
      sig.pattern = RawSignal::Pattern::kToggle;
      signals.push_back(std::move(sig));
    }
    // Assign DIDs and distribute across ECUs round-robin (except signals
    // with pre-assigned DIDs, which stay as they are).
    for (std::size_t i = 0; i < signals.size(); ++i) {
      auto& sig = signals[i];
      const std::size_t ecu_index = i % spec.ecus.size();
      if (sig.did == 0) {
        sig.did = static_cast<uds::Did>(0xF400 + 0x40 * ecu_index + i);
      }
      spec.ecus[ecu_index].uds_signals.push_back(sig);
    }
  } else {
    // KWP car: group ESVs into measuring blocks of up to 4.
    const auto& pool = kwp_esv_templates();
    std::size_t cursor = static_cast<std::size_t>(config.id) * 3;
    std::vector<KwpEsvSpec> esvs;
    while (esvs.size() < config.formula_count) {
      const auto& entry = pool[cursor % pool.size()];
      ++cursor;
      bool duplicate = false;
      for (const auto& existing : esvs) {
        if (existing.name == entry.name) duplicate = true;
      }
      // Large KWP cars (Car K has 41 ESVs) exhaust the pool; allow reuse
      // with an index suffix once the pool wraps.
      KwpEsvSpec esv;
      esv.formula_type = entry.type;
      esv.name = duplicate ? std::string(entry.name) + " #" +
                                 std::to_string(esvs.size())
                           : entry.name;
      esv.unit = entry.unit;
      esv.x0_lo = entry.x0_lo;
      esv.x0_hi = entry.x0_hi;
      esv.x1_lo = entry.x1_lo;
      esv.x1_hi = entry.x1_hi;
      esv.pattern = entry.pattern;
      esvs.push_back(std::move(esv));
    }
    for (std::size_t i = 0; i < config.enum_count; ++i) {
      KwpEsvSpec esv;
      esv.formula_type = 0x11;  // status kind
      esv.name = enum_name_templates()[i % enum_name_templates().size()];
      esv.is_enum = true;
      esv.x0_lo = esv.x0_hi = 0x00;
      esv.x1_lo = 0;
      esv.x1_hi = 1;
      esv.pattern = RawSignal::Pattern::kToggle;
      esvs.push_back(std::move(esv));
    }
    // Measuring blocks of 4..8 ESVs (long multi-frame responses — the
    // KWP traffic shape Table 9 reports); local ids start at 0x01.
    std::uint8_t local_id = 0x01;
    std::size_t i = 0;
    std::size_t block_index = 0;
    while (i < esvs.size()) {
      KwpLocalIdSpec block;
      block.local_id = local_id++;
      block.group_name = "Measuring Block " + std::to_string(block.local_id);
      const std::size_t take = std::min<std::size_t>(
          esvs.size() - i, 4 + static_cast<std::size_t>(rng.uniform_int(0, 4)));
      for (std::size_t k = 0; k < take; ++k) block.esvs.push_back(esvs[i++]);
      spec.ecus[block_index % spec.ecus.size()].kwp_local_ids.push_back(
          std::move(block));
      ++block_index;
    }
  }

  // --- Actuators ------------------------------------------------------------
  std::vector<ActuatorSpec> actuators =
      config.attack_targets ? special_actuators(config.id)
                            : std::vector<ActuatorSpec>{};
  const auto& apool = actuator_templates();
  std::size_t acursor = static_cast<std::size_t>(config.id) * 5;
  std::size_t askips = 0;
  while (actuators.size() < config.ecr_count) {
    const auto& entry = apool[acursor % apool.size()];
    ++acursor;
    bool duplicate = false;
    for (const auto& a : actuators) {
      if (a.name == entry.name) duplicate = true;
    }
    if (duplicate && ++askips <= apool.size()) continue;
    askips = 0;
    ActuatorSpec act;
    act.name = duplicate ? std::string(entry.name) + " #" +
                               std::to_string(actuators.size())
                         : entry.name;
    act.example_state.assign(entry.state.begin(), entry.state.end());
    actuators.push_back(std::move(act));
  }
  for (std::size_t i = 0; i < actuators.size(); ++i) {
    auto& act = actuators[i];
    const std::size_t ecu_index = i % spec.ecus.size();
    if (act.id == 0) {
      act.id = config.io_service == IoService::kUds2F
                   ? static_cast<std::uint16_t>(0x0950 + 0x10 * i)
                   : static_cast<std::uint16_t>(0x30 + i);
    }
    spec.ecus[ecu_index].actuators.push_back(act);
  }

  return spec;
}

}  // namespace

const std::vector<CarSpec>& catalog() {
  static const std::vector<CarSpec> cars = [] {
    std::vector<CarSpec> list;
    for (const auto& config : car_configs()) list.push_back(build_car(config));
    return list;
  }();
  return cars;
}

const CarSpec& car_spec(CarId id) {
  for (const auto& spec : catalog()) {
    if (spec.id == id) return spec;
  }
  throw std::out_of_range("unknown car id");
}

std::string car_label(CarId id) { return car_spec(id).label; }

std::uint64_t spec_digest(const CarSpec& spec) {
  using util::fnv1a64_f64;
  using util::fnv1a64_str;
  using util::fnv1a64_u64;
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = fnv1a64_u64(static_cast<std::uint64_t>(spec.id), h);
  h = fnv1a64_str(spec.label, h);
  h = fnv1a64_str(spec.model, h);
  h = fnv1a64_u64(static_cast<std::uint64_t>(spec.protocol), h);
  h = fnv1a64_u64(static_cast<std::uint64_t>(spec.transport), h);
  h = fnv1a64_u64(static_cast<std::uint64_t>(spec.io_service), h);
  h = fnv1a64_str(spec.tool, h);
  h = fnv1a64_u64(spec.formula_esv_count, h);
  h = fnv1a64_u64(spec.enum_esv_count, h);
  h = fnv1a64_u64(spec.ecr_count, h);
  h = fnv1a64_u64(spec.gen_seed, h);
  const auto fold_formula = [&](const PropFormula& f) {
    h = fnv1a64_u64(static_cast<std::uint64_t>(f.kind()), h);
    h = fnv1a64_f64(f.a(), h);
    h = fnv1a64_f64(f.b(), h);
    h = fnv1a64_f64(f.c(), h);
  };
  h = fnv1a64_u64(spec.ecus.size(), h);
  for (const auto& ecu : spec.ecus) {
    h = fnv1a64_str(ecu.name, h);
    h = fnv1a64_u64(ecu.address, h);
    h = fnv1a64_u64(ecu.request_id, h);
    h = fnv1a64_u64(ecu.response_id, h);
    h = fnv1a64_u64(ecu.supports_obd ? 1 : 0, h);
    h = fnv1a64_u64(ecu.uds_signals.size(), h);
    for (const auto& sig : ecu.uds_signals) {
      h = fnv1a64_u64(sig.did, h);
      h = fnv1a64_str(sig.name, h);
      h = fnv1a64_str(sig.unit, h);
      h = fnv1a64_u64(sig.data_bytes, h);
      fold_formula(sig.formula);
      h = fnv1a64_u64(sig.raw_lo, h);
      h = fnv1a64_u64(sig.raw_hi, h);
      h = fnv1a64_u64(static_cast<std::uint64_t>(sig.pattern), h);
      h = fnv1a64_u64(sig.independent_bytes ? 1 : 0, h);
    }
    h = fnv1a64_u64(ecu.kwp_local_ids.size(), h);
    for (const auto& block : ecu.kwp_local_ids) {
      h = fnv1a64_u64(block.local_id, h);
      h = fnv1a64_str(block.group_name, h);
      h = fnv1a64_u64(block.esvs.size(), h);
      for (const auto& esv : block.esvs) {
        h = fnv1a64_u64(esv.formula_type, h);
        h = fnv1a64_str(esv.name, h);
        h = fnv1a64_str(esv.unit, h);
        h = fnv1a64_u64(esv.x0_lo, h);
        h = fnv1a64_u64(esv.x0_hi, h);
        h = fnv1a64_u64(esv.x1_lo, h);
        h = fnv1a64_u64(esv.x1_hi, h);
        h = fnv1a64_u64(static_cast<std::uint64_t>(esv.pattern), h);
        h = fnv1a64_u64(esv.is_enum ? 1 : 0, h);
      }
    }
    h = fnv1a64_u64(ecu.actuators.size(), h);
    for (const auto& act : ecu.actuators) {
      h = fnv1a64_u64(act.id, h);
      h = fnv1a64_str(act.name, h);
      h = fnv1a64_u64(act.example_state.size(), h);
      for (const std::uint8_t byte : act.example_state) {
        h = fnv1a64_u64(byte, h);
      }
    }
  }
  return h;
}

std::uint64_t car_stream_salt(const CarSpec& spec) {
  // Weyl-step the gen_seed so generated cars with adjacent seeds still get
  // well-separated salts; gen_seed == 0 reproduces the pre-generator
  // catalog salts exactly.
  return static_cast<std::uint64_t>(spec.id) +
         0x9E3779B97F4A7C15ULL * spec.gen_seed;
}

void validate_spec(const CarSpec& spec) {
  const auto fail = [&](const std::string& what) {
    throw std::invalid_argument("invalid car spec '" + spec.label +
                                "': " + what);
  };
  if (spec.ecus.empty()) fail("no ECUs");

  std::set<std::uint32_t> addresses, request_ids, response_ids;
  std::set<std::uint16_t> dids, actuator_ids;
  std::set<std::uint8_t> local_ids;
  const bool shared_tester =
      spec.transport == TransportKind::kBmwFraming;  // one tester id, 0x6F1
  for (std::size_t e = 0; e < spec.ecus.size(); ++e) {
    const auto& ecu = spec.ecus[e];
    if (!addresses.insert(ecu.address).second) {
      fail("duplicate ECU address " + std::to_string(ecu.address));
    }
    if (ecu.request_id == ecu.response_id) {
      fail("request id equals response id on " + ecu.name);
    }
    if (!request_ids.insert(ecu.request_id).second && !shared_tester) {
      fail("duplicate request CAN id on " + ecu.name);
    }
    if (!response_ids.insert(ecu.response_id).second) {
      fail("duplicate response CAN id on " + ecu.name);
    }
    // 0x7DF/0x7E8 carry the SAE J1979 functional query and its reply;
    // only the OBD-capable engine ECU may sit on them.
    if (ecu.request_id == 0x7DF || ecu.response_id == 0x7DF) {
      fail("ECU on the OBD functional id 0x7DF");
    }
    if (!ecu.supports_obd &&
        (ecu.request_id == 0x7E8 || ecu.response_id == 0x7E8)) {
      fail("non-OBD ECU on the OBD response id 0x7E8");
    }
    for (const auto& sig : ecu.uds_signals) {
      if (!dids.insert(sig.did).second) {
        fail("duplicate DID " + std::to_string(sig.did));
      }
    }
    for (const auto& block : ecu.kwp_local_ids) {
      if (!local_ids.insert(block.local_id).second) {
        fail("duplicate KWP local id " + std::to_string(block.local_id));
      }
    }
    for (const auto& act : ecu.actuators) {
      if (!actuator_ids.insert(act.id).second) {
        fail("duplicate actuator id " + std::to_string(act.id));
      }
    }
  }
  if (spec.io_service == IoService::kUds2F &&
      spec.protocol != Protocol::kUds) {
    fail("UDS 0x2F IO service on a non-UDS car");
  }
}

}  // namespace dpr::vehicle
