#pragma once
// Per-vehicle specification catalog: Cars A-R of Table 3, with signal and
// actuator inventories sized to match the paper's evaluation (Table 6 ESV
// counts, Table 11 ECR counts). Each spec is generated deterministically
// from the car id, drawing names/formulas from realistic automotive pools.

#include <cstdint>
#include <string>
#include <vector>

#include "uds/message.hpp"
#include "util/hex.hpp"
#include "vehicle/formula.hpp"
#include "vehicle/signal.hpp"

namespace dpr::vehicle {

enum class CarId {
  kA, kB, kC, kD, kE, kF, kG, kH, kI, kJ, kK, kL, kM, kN, kO, kP, kQ, kR,
};

enum class Protocol { kUds, kKwp2000 };

enum class TransportKind { kIsoTp, kVwTp20, kBmwFraming };

/// Which IO-control service the vehicle's ECUs expose (Table 11: five
/// cars use UDS 0x2F, five use the local-identifier service 0x30).
enum class IoService { kUds2F, kKwp30 };

/// One readable UDS data identifier.
struct UdsSignalSpec {
  uds::Did did = 0;
  std::string name;
  std::string unit;
  std::size_t data_bytes = 1;
  PropFormula formula;       // kEnum for the "#ESV (Enum)" rows
  std::uint32_t raw_lo = 0;  // raw-count dynamics
  std::uint32_t raw_hi = 255;
  RawSignal::Pattern pattern = RawSignal::Pattern::kRandomWalk;
  /// Two-byte signals whose bytes are *separate* physical quantities
  /// (product/two-variable formulas): each byte evolves independently
  /// within its own [raw_lo, raw_hi] sub-range instead of forming one
  /// 16-bit counter.
  bool independent_bytes = false;
};

/// One 3-byte KWP ESV inside a measuring block. The scaling byte X0 is
/// constant when x0_lo == x0_hi (the common case the paper observes, e.g.
/// vehicle speed with X0 pinned to 0x64); a few signals vary both bytes.
struct KwpEsvSpec {
  std::uint8_t formula_type = 0;  // index into kwp::formula_table
  std::string name;
  std::string unit;
  std::uint8_t x0_lo = 0x64;
  std::uint8_t x0_hi = 0x64;
  std::uint8_t x1_lo = 0;
  std::uint8_t x1_hi = 255;
  RawSignal::Pattern pattern = RawSignal::Pattern::kRandomWalk;
  bool is_enum = false;
};

/// A KWP local identifier (measuring block) grouping 1..4 ESVs (Fig. 3).
struct KwpLocalIdSpec {
  std::uint8_t local_id = 0;
  std::string group_name;
  std::vector<KwpEsvSpec> esvs;
};

/// One controllable component.
struct ActuatorSpec {
  std::uint16_t id = 0;  // DID (UDS 0x2F) or local id (service 0x30)
  std::string name;
  util::Bytes example_state;  // control-state bytes for shortTermAdjustment
};

struct EcuSpec {
  std::string name;  // "Engine", "Main Body", "ABS", ...
  std::uint8_t address = 0;        // logical address (VW TP / BMW framing)
  std::uint32_t request_id = 0;    // ISO-TP request CAN id
  std::uint32_t response_id = 0;   // ISO-TP response CAN id
  bool supports_obd = false;       // engine ECU also answers SAE J1979
  std::vector<UdsSignalSpec> uds_signals;
  std::vector<KwpLocalIdSpec> kwp_local_ids;
  std::vector<ActuatorSpec> actuators;
};

struct CarSpec {
  CarId id = CarId::kA;
  std::string label;    // "Car A"
  std::string model;    // "Skoda Octavia"
  Protocol protocol = Protocol::kUds;
  TransportKind transport = TransportKind::kIsoTp;
  IoService io_service = IoService::kUds2F;
  std::string tool;     // diagnostic tool used in the paper (Table 3)
  std::vector<EcuSpec> ecus;

  /// Totals across ECUs (mirroring Tables 6 and 11).
  std::size_t formula_esv_count = 0;
  std::size_t enum_esv_count = 0;
  std::size_t ecr_count = 0;
};

/// The full 18-car catalog; built once, deterministic.
const std::vector<CarSpec>& catalog();

const CarSpec& car_spec(CarId id);

std::string car_label(CarId id);

}  // namespace dpr::vehicle
