#pragma once
// Per-vehicle specification catalog: Cars A-R of Table 3, with signal and
// actuator inventories sized to match the paper's evaluation (Table 6 ESV
// counts, Table 11 ECR counts). Each spec is generated deterministically
// from the car id, drawing names/formulas from realistic automotive pools.
// The same pools back vehicle::Generator, which synthesizes arbitrary
// fleets beyond the 18 pre-baked specs.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "uds/message.hpp"
#include "util/hex.hpp"
#include "vehicle/formula.hpp"
#include "vehicle/signal.hpp"

namespace dpr::vehicle {

enum class CarId {
  kA, kB, kC, kD, kE, kF, kG, kH, kI, kJ, kK, kL, kM, kN, kO, kP, kQ, kR,
};

enum class Protocol { kUds, kKwp2000 };

enum class TransportKind { kIsoTp, kVwTp20, kBmwFraming };

/// Which IO-control service the vehicle's ECUs expose (Table 11: five
/// cars use UDS 0x2F, five use the local-identifier service 0x30).
enum class IoService { kUds2F, kKwp30 };

/// One readable UDS data identifier.
struct UdsSignalSpec {
  uds::Did did = 0;
  std::string name;
  std::string unit;
  std::size_t data_bytes = 1;
  PropFormula formula;       // kEnum for the "#ESV (Enum)" rows
  std::uint32_t raw_lo = 0;  // raw-count dynamics
  std::uint32_t raw_hi = 255;
  RawSignal::Pattern pattern = RawSignal::Pattern::kRandomWalk;
  /// Two-byte signals whose bytes are *separate* physical quantities
  /// (product/two-variable formulas): each byte evolves independently
  /// within its own [raw_lo, raw_hi] sub-range instead of forming one
  /// 16-bit counter.
  bool independent_bytes = false;
};

/// One 3-byte KWP ESV inside a measuring block. The scaling byte X0 is
/// constant when x0_lo == x0_hi (the common case the paper observes, e.g.
/// vehicle speed with X0 pinned to 0x64); a few signals vary both bytes.
struct KwpEsvSpec {
  std::uint8_t formula_type = 0;  // index into kwp::formula_table
  std::string name;
  std::string unit;
  std::uint8_t x0_lo = 0x64;
  std::uint8_t x0_hi = 0x64;
  std::uint8_t x1_lo = 0;
  std::uint8_t x1_hi = 255;
  RawSignal::Pattern pattern = RawSignal::Pattern::kRandomWalk;
  bool is_enum = false;
};

/// A KWP local identifier (measuring block) grouping 1..4 ESVs (Fig. 3).
struct KwpLocalIdSpec {
  std::uint8_t local_id = 0;
  std::string group_name;
  std::vector<KwpEsvSpec> esvs;
};

/// One controllable component.
struct ActuatorSpec {
  std::uint16_t id = 0;  // DID (UDS 0x2F) or local id (service 0x30)
  std::string name;
  util::Bytes example_state;  // control-state bytes for shortTermAdjustment
};

struct EcuSpec {
  std::string name;  // "Engine", "Main Body", "ABS", ...
  std::uint8_t address = 0;        // logical address (VW TP / BMW framing)
  std::uint32_t request_id = 0;    // ISO-TP request CAN id
  std::uint32_t response_id = 0;   // ISO-TP response CAN id
  bool supports_obd = false;       // engine ECU also answers SAE J1979
  std::vector<UdsSignalSpec> uds_signals;
  std::vector<KwpLocalIdSpec> kwp_local_ids;
  std::vector<ActuatorSpec> actuators;
};

struct CarSpec {
  CarId id = CarId::kA;
  std::string label;    // "Car A"
  std::string model;    // "Skoda Octavia"
  Protocol protocol = Protocol::kUds;
  TransportKind transport = TransportKind::kIsoTp;
  IoService io_service = IoService::kUds2F;
  std::string tool;     // diagnostic tool used in the paper (Table 3)
  std::vector<EcuSpec> ecus;

  /// Totals across ECUs (mirroring Tables 6 and 11).
  std::size_t formula_esv_count = 0;
  std::size_t enum_esv_count = 0;
  std::size_t ecr_count = 0;

  /// Nonzero for procedurally generated cars (vehicle::Generator): the
  /// generator seed, folded into the per-car RNG stream salt so two
  /// generated cars never share dynamics/fault streams. 0 for the 18
  /// hand-built catalog cars, which keeps their streams bit-identical to
  /// pre-generator builds.
  std::uint64_t gen_seed = 0;
};

/// The full 18-car catalog; built once, deterministic.
const std::vector<CarSpec>& catalog();

const CarSpec& car_spec(CarId id);

std::string car_label(CarId id);

/// FNV-1a 64 over every semantic field of a spec (label, model, protocol
/// stack, every ECU's addressing/signal/actuator tables, gen_seed).
/// Campaign checkpoints and fleet bookkeeping key on this digest, so a
/// generated car resumes exactly like a catalog car; two specs collide
/// only if they are byte-for-byte the same vehicle.
std::uint64_t spec_digest(const CarSpec& spec);

/// Per-car salt for derived RNG streams (signal dynamics, fault
/// injection). Catalog cars salt by id exactly as before the generator
/// existed; generated cars additionally fold in gen_seed.
std::uint64_t car_stream_salt(const CarSpec& spec);

/// Structural invariants every spec must satisfy for the simulator and
/// the ground-truth scorer to behave: unique ECU addresses, unique
/// response CAN ids, unique request ids (except the deliberately shared
/// BMW tester id 0x6F1), no collisions with the OBD functional ids, and
/// car-globally unique DIDs / KWP local ids / actuator ids. Throws
/// std::invalid_argument naming the first violation.
void validate_spec(const CarSpec& spec);

/// --- Template pools --------------------------------------------------------
// The realistic signal/actuator inventories both the hand-built catalog
// and vehicle::Generator draw from. Formula templates cover every
// PropFormula family (linear/quadratic/two-byte/product) plus the KWP
// formula-type table.

struct UdsSignalTemplate {
  const char* name;
  const char* unit;
  std::size_t bytes;
  PropFormula formula;
  std::uint32_t lo, hi;
  RawSignal::Pattern pattern;
  bool independent_bytes = false;
};

struct KwpEsvTemplate {
  std::uint8_t type;  // index into kwp::formula_table
  const char* name;
  const char* unit;
  std::uint8_t x0_lo, x0_hi;
  std::uint8_t x1_lo, x1_hi;
  RawSignal::Pattern pattern;
};

struct ActuatorTemplate {
  const char* name;
  std::array<std::uint8_t, 4> state;  // example shortTermAdjustment state
};

const std::vector<UdsSignalTemplate>& uds_signal_templates();
const std::vector<KwpEsvTemplate>& kwp_esv_templates();
const std::vector<const char*>& enum_name_templates();
const std::vector<ActuatorTemplate>& actuator_templates();

}  // namespace dpr::vehicle
