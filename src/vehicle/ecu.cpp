#include "vehicle/ecu.hpp"

#include "kwp/formulas.hpp"
#include "obd/pid.hpp"

namespace dpr::vehicle {

EcuSim::EcuSim(const EcuSpec& spec, const CarSpec& car, can::CanBus& bus,
               util::SimClock& clock, util::Rng rng,
               const util::FaultConfig& faults)
    : spec_(spec), car_(car), clock_(clock) {
  if (car_.protocol == Protocol::kUds) {
    install_uds_signals(rng);
  } else {
    install_kwp_blocks(rng);
  }
  // A few stored trouble codes per ECU (exercised by the tool's
  // "Read/Clear Trouble Codes" screens).
  const int n_dtcs = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < n_dtcs; ++i) {
    if (car_.protocol == Protocol::kUds) {
      uds_server_.add_dtc(static_cast<std::uint32_t>(
          rng.uniform_int(0x010100, 0x04FFFF)));
    } else {
      kwp_server_.add_dtc(
          static_cast<std::uint16_t>(rng.uniform_int(0x0100, 0x4FFF)));
    }
  }
  install_actuators();
  if (spec_.supports_obd && car_.transport == TransportKind::kIsoTp) {
    install_obd(rng);
  }
  if (faults.rate > 0.0) {
    // Stream salts derive from the stable request id, so server faults
    // replay identically regardless of vehicle seed or build order.
    const double pending = faults.server_pending_rate();
    const double busy = faults.server_busy_rate();
    uds_server_.enable_faults(
        uds::Server::FaultProfile{pending, 2, busy},
        faults.rng_for(0x0D000000ULL + spec_.request_id));
    kwp_server_.enable_faults(
        kwp::Server::FaultProfile{pending, 2, busy},
        faults.rng_for(0x0E000000ULL + spec_.request_id));
  }
  if (faults.stateful()) {
    // Session timers always come with stateful failures: S3 expiry is what
    // makes a reboot *stay* harmful until the supervisor re-establishes
    // the session. Reset streams get their own salt space (0x0F/0x0F8).
    uds_server_.enable_sessions(
        uds::Server::SessionProfile{faults.s3_timeout}, clock_);
    kwp_server_.enable_sessions(
        kwp::Server::SessionProfile{faults.s3_timeout}, clock_);
    if (faults.reset_rate > 0.0) {
      uds_server_.enable_resets(
          uds::Server::ResetProfile{faults.reset_rate, faults.reset_boot_time},
          clock_, faults.stream_for(0x0F000000ULL + spec_.request_id));
      kwp_server_.enable_resets(
          kwp::Server::ResetProfile{faults.reset_rate, faults.reset_boot_time},
          clock_, faults.stream_for(0x0F800000ULL + spec_.request_id));
    }
  }
  attach_transport(bus);
}

std::vector<std::uint8_t> EcuSim::sample_uds_raw(
    const UdsSignal& sig) const {
  if (sig.low_source) {
    return {static_cast<std::uint8_t>(sig.source->sample(clock_.now())),
            static_cast<std::uint8_t>(
                sig.low_source->sample(clock_.now()))};
  }
  return raw_to_bytes(sig.source->sample(clock_.now()),
                      sig.spec.data_bytes);
}

void EcuSim::install_uds_signals(util::Rng& rng) {
  for (const auto& sig : spec_.uds_signals) {
    UdsSignal entry;
    entry.spec = sig;
    if (sig.independent_bytes && sig.data_bytes == 2) {
      entry.source = std::make_unique<RawSignal>(
          sig.pattern, sig.raw_lo >> 8, sig.raw_hi >> 8, rng.fork());
      entry.low_source = std::make_unique<RawSignal>(
          sig.pattern, sig.raw_lo & 0xFF, sig.raw_hi & 0xFF, rng.fork());
    } else {
      entry.source = std::make_unique<RawSignal>(sig.pattern, sig.raw_lo,
                                                 sig.raw_hi, rng.fork());
    }
    const uds::Did did = sig.did;
    const std::size_t nbytes = sig.data_bytes;
    auto [it, inserted] = uds_signals_.emplace(did, std::move(entry));
    const UdsSignal* stored = &it->second;
    uds_server_.add_did(did, nbytes,
                        [this, stored]() { return sample_uds_raw(*stored); });
  }
}

void EcuSim::install_kwp_blocks(util::Rng& rng) {
  // ECU identification record (part number, coding, workshop data): the
  // long response a real tool pulls on connect.
  {
    std::string ident = car_.model + " / " + spec_.name +
                        " / 06A-906-032-HN / coding 07245 / WSC 01236 / "
                        "software 1109 / hardware 23";
    ident.resize(88, ' ');
    kwp_server_.set_identification(
        util::Bytes(ident.begin(), ident.end()));
  }
  for (const auto& block_spec : spec_.kwp_local_ids) {
    KwpBlock block;
    block.spec = block_spec;
    for (const auto& esv_spec : block_spec.esvs) {
      KwpEsv esv;
      esv.spec = esv_spec;
      if (esv_spec.x0_lo != esv_spec.x0_hi) {
        esv.x0_source = std::make_unique<RawSignal>(
            RawSignal::Pattern::kRandomWalk, esv_spec.x0_lo, esv_spec.x0_hi,
            rng.fork());
      }
      esv.x1_source = std::make_unique<RawSignal>(
          esv_spec.pattern, esv_spec.x1_lo, esv_spec.x1_hi, rng.fork());
      block.esvs.push_back(std::move(esv));
    }
    const std::uint8_t local_id = block_spec.local_id;
    kwp_blocks_.emplace(local_id, std::move(block));
    kwp_server_.add_local_id(local_id, [this, local_id]() {
      std::vector<kwp::EsvRecord> records;
      auto& block_state = kwp_blocks_.at(local_id);
      for (auto& esv : block_state.esvs) {
        kwp::EsvRecord rec;
        rec.formula_type = esv.spec.formula_type;
        rec.x0 = esv.x0_source
                     ? static_cast<std::uint8_t>(
                           esv.x0_source->sample(clock_.now()))
                     : esv.spec.x0_lo;
        rec.x1 = static_cast<std::uint8_t>(
            esv.x1_source->sample(clock_.now()));
        records.push_back(rec);
      }
      return records;
    });
  }
}

void EcuSim::install_actuators() {
  for (const auto& act_spec : spec_.actuators) {
    actuators_.emplace(act_spec.id, Actuator(act_spec.name));
    const std::uint16_t id = act_spec.id;
    if (car_.io_service == IoService::kUds2F) {
      uds_server_.add_io_did(
          id,
          [this, id](uds::IoControlParameter param,
                     std::span<const std::uint8_t> state)
              -> std::optional<util::Bytes> {
            return actuators_.at(id).apply(
                static_cast<std::uint8_t>(param), state);
          });
    } else {
      // Local-identifier IO control (service 0x30): the ECR's first byte
      // is the IO control parameter, the rest is the control state.
      kwp_server_.add_io_local(
          static_cast<std::uint8_t>(id),
          [this, id](std::span<const std::uint8_t> ecr)
              -> std::optional<util::Bytes> {
            if (ecr.empty()) return std::nullopt;
            return actuators_.at(id).apply(ecr[0], ecr.subspan(1));
          });
    }
  }
}

void EcuSim::install_obd(util::Rng& rng) {
  for (const auto& pid_spec : obd::pid_table()) {
    ObdSignal sig;
    sig.pid = pid_spec.pid;
    // Drive each PID with a walk across the middle of its raw range.
    const std::uint32_t hi =
        pid_spec.data_bytes == 1 ? 0xFFu : 0xFFFFu;
    sig.source = std::make_unique<RawSignal>(
        RawSignal::Pattern::kRandomWalk, hi / 8, hi - hi / 8, rng.fork());
    obd_signals_.push_back(std::move(sig));
  }
}

void EcuSim::attach_transport(can::CanBus& bus) {
  switch (car_.transport) {
    case TransportKind::kIsoTp: {
      isotp::EndpointConfig config{can::CanId{spec_.response_id, false},
                                   can::CanId{spec_.request_id, false}};
      // Reap segmented responses whose flow control got lost instead of
      // throwing out of the ECU; a no-op on a lossless bus.
      config.stall_policy = isotp::StallPolicy::kAbortStale;
      isotp_link_ = std::make_unique<isotp::Endpoint>(bus, config);
      link_ = isotp_link_.get();
      break;
    }
    case TransportKind::kVwTp20: {
      // Data channel ids follow the convention negotiated by the setup
      // handshake the vehicle performs on connect.
      vwtp_link_ = std::make_unique<vwtp::Channel>(
          bus, vwtp::ChannelConfig{
                   can::CanId{spec_.response_id, false},
                   can::CanId{spec_.request_id, false}});
      link_ = vwtp_link_.get();
      break;
    }
    case TransportKind::kBmwFraming: {
      bmw_link_ = std::make_unique<oemtp::BmwLink>(
          bus, oemtp::BmwLinkConfig{
                   can::CanId{spec_.response_id, false},
                   can::CanId{spec_.request_id, false},
                   /*peer_address=*/0xF1,  // tester address
                   /*own_address=*/spec_.address});
      link_ = bmw_link_.get();
      break;
    }
  }
  link_->set_message_handler(
      [this](const util::Bytes& request) { dispatch(request); });

  // Engine ECUs additionally answer OBD-II requests on the functional id.
  if (!obd_signals_.empty()) {
    isotp::EndpointConfig obd_config{can::CanId{0x7E8, false},
                                     can::CanId{0x7DF, false}};
    obd_config.stall_policy = isotp::StallPolicy::kAbortStale;
    obd_link_ = std::make_unique<isotp::Endpoint>(bus, obd_config);
    obd_link_->set_message_handler([this](const util::Bytes& request) {
      if (request.size() < 2 || request[0] != obd::kModeCurrentData) return;
      for (const auto& sig : obd_signals_) {
        if (sig.pid != request[1]) continue;
        const auto spec = obd::find_pid(sig.pid);
        if (!spec) return;
        const std::uint32_t raw = sig.source->sample(clock_.now());
        obd_link_->send(obd::encode_response(
            sig.pid, raw_to_bytes(raw, spec->data_bytes)));
        return;
      }
    });
  }
}

void EcuSim::dispatch(const util::Bytes& request) {
  if (request.empty()) return;
  std::vector<util::Bytes> responses;
  if (car_.protocol == Protocol::kKwp2000) {
    responses = kwp_server_.respond(request);
  } else if (request[0] == kwp::kIoControlByLocalId ||
             request[0] == kwp::kStartDiagnosticSession) {
    // UDS vehicles whose IO control runs over the local-identifier
    // service (Table 11, service id 30): route 0x30 to the KWP server.
    // 0x10 is ambiguous between the stacks; the KWP server's session
    // reply is compatible, but prefer UDS if this car is pure 0x2F.
    if (request[0] == kwp::kIoControlByLocalId &&
        car_.io_service == IoService::kKwp30) {
      responses = kwp_server_.respond(request);
    } else {
      responses = uds_server_.respond(request);
    }
  } else {
    responses = uds_server_.respond(request);
  }
  for (const util::Bytes& response : responses) {
    if (!response.empty()) link_->send(response);
  }
}

std::optional<double> EcuSim::physical_value(uds::Did did) const {
  const auto it = uds_signals_.find(did);
  if (it == uds_signals_.end()) return std::nullopt;
  return it->second.spec.formula.eval(sample_uds_raw(it->second));
}

std::optional<double> EcuSim::kwp_physical_value(std::uint8_t local_id,
                                                 std::size_t index) const {
  const auto it = kwp_blocks_.find(local_id);
  if (it == kwp_blocks_.end() || index >= it->second.esvs.size()) {
    return std::nullopt;
  }
  const auto& esv = it->second.esvs[index];
  const std::uint8_t x0 =
      esv.x0_source ? static_cast<std::uint8_t>(
                          esv.x0_source->sample(clock_.now()))
                    : esv.spec.x0_lo;
  const std::uint8_t x1 =
      static_cast<std::uint8_t>(esv.x1_source->sample(clock_.now()));
  return kwp::decode_esv(esv.spec.formula_type, x0, x1);
}

const Actuator* EcuSim::actuator(std::uint16_t id) const {
  const auto it = actuators_.find(id);
  return it == actuators_.end() ? nullptr : &it->second;
}

Actuator* EcuSim::actuator(std::uint16_t id) {
  const auto it = actuators_.find(id);
  return it == actuators_.end() ? nullptr : &it->second;
}

}  // namespace dpr::vehicle
