#pragma once
// Simulated ECU: owns the protocol servers (UDS / KWP / OBD-II), the raw
// signal stores behind every readable identifier, and the actuators behind
// every controllable identifier. Bound to the CAN bus through whichever
// transport the vehicle uses (ISO-TP, VW TP 2.0, or BMW framing).

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "can/bus.hpp"
#include "isotp/endpoint.hpp"
#include "kwp/server.hpp"
#include "oemtp/link.hpp"
#include "uds/server.hpp"
#include "util/clock.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "vehicle/actuator.hpp"
#include "vehicle/catalog.hpp"
#include "vwtp/channel.hpp"

namespace dpr::vehicle {

class EcuSim {
 public:
  /// `spec` describes this ECU; `car` supplies protocol/transport context.
  /// `faults`, when enabled, arms the protocol servers with 0x78/0x21
  /// fault behaviour on an independent stream derived from the fault seed.
  EcuSim(const EcuSpec& spec, const CarSpec& car, can::CanBus& bus,
         util::SimClock& clock, util::Rng rng,
         const util::FaultConfig& faults = {});

  EcuSim(const EcuSim&) = delete;
  EcuSim& operator=(const EcuSim&) = delete;

  const std::string& name() const { return spec_.name; }
  const EcuSpec& spec() const { return spec_; }

  /// Current physical value of a UDS signal (ground truth for scoring).
  std::optional<double> physical_value(uds::Did did) const;

  /// Current physical value of one KWP ESV (block, index).
  std::optional<double> kwp_physical_value(std::uint8_t local_id,
                                           std::size_t index) const;

  /// Actuator behind a DID / local id, if any.
  const Actuator* actuator(std::uint16_t id) const;
  Actuator* actuator(std::uint16_t id);

  /// The tester-side ids to reach this ECU.
  std::uint32_t request_id() const { return spec_.request_id; }
  std::uint32_t response_id() const { return spec_.response_id; }

  uds::Server& uds_server() { return uds_server_; }
  kwp::Server& kwp_server() { return kwp_server_; }

  /// Spontaneous reboots / S3 session expiries across both servers.
  std::uint64_t resets() const {
    return uds_server_.resets() + kwp_server_.resets();
  }
  std::uint64_t s3_expiries() const {
    return uds_server_.s3_expiries() + kwp_server_.s3_expiries();
  }

  /// True while either protocol server is inside a reboot silence window.
  /// The NM node for this ECU keys on it: a rebooting ECU vanishes from
  /// the ring (deaf and mute) until the boot completes.
  bool offline(util::SimTime now) const {
    return now < uds_server_.silent_until() ||
           now < kwp_server_.silent_until();
  }

 private:
  void install_uds_signals(util::Rng& rng);
  void install_kwp_blocks(util::Rng& rng);
  void install_actuators();
  void install_obd(util::Rng& rng);
  void attach_transport(can::CanBus& bus);
  void dispatch(const util::Bytes& request);

  EcuSpec spec_;
  const CarSpec& car_;
  util::SimClock& clock_;

  uds::Server uds_server_;
  kwp::Server kwp_server_;

  // Signal stores.
  struct UdsSignal {
    UdsSignalSpec spec;
    std::unique_ptr<RawSignal> source;        // combined (or high byte)
    std::unique_ptr<RawSignal> low_source;    // independent low byte
  };

  std::vector<std::uint8_t> sample_uds_raw(const UdsSignal& sig) const;
  std::map<uds::Did, UdsSignal> uds_signals_;

  struct KwpEsv {
    KwpEsvSpec spec;
    std::unique_ptr<RawSignal> x0_source;  // null when X0 is constant
    std::unique_ptr<RawSignal> x1_source;
  };
  struct KwpBlock {
    KwpLocalIdSpec spec;
    std::vector<KwpEsv> esvs;
  };
  std::map<std::uint8_t, KwpBlock> kwp_blocks_;

  // OBD-II mode-01 state (engine ECUs only).
  struct ObdSignal {
    std::uint8_t pid = 0;
    std::unique_ptr<RawSignal> source;
  };
  std::vector<ObdSignal> obd_signals_;

  std::map<std::uint16_t, Actuator> actuators_;

  // Transport (exactly one is active, depending on car_.transport).
  std::unique_ptr<isotp::Endpoint> isotp_link_;
  std::unique_ptr<isotp::Endpoint> obd_link_;   // 0x7DF functional listener
  std::unique_ptr<vwtp::Channel> vwtp_link_;
  std::unique_ptr<oemtp::BmwLink> bmw_link_;
  util::MessageLink* link_ = nullptr;
};

}  // namespace dpr::vehicle
