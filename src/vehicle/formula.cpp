#include "vehicle/formula.hpp"

#include <cmath>
#include <sstream>

namespace dpr::vehicle {

PropFormula PropFormula::enumeration() {
  PropFormula f;
  f.kind_ = Kind::kEnum;
  return f;
}

PropFormula PropFormula::linear(double a, double b) {
  PropFormula f;
  f.kind_ = Kind::kLinear;
  f.a_ = a;
  f.b_ = b;
  return f;
}

PropFormula PropFormula::quadratic(double a, double b, double c) {
  PropFormula f;
  f.kind_ = Kind::kQuadratic;
  f.a_ = a;
  f.b_ = b;
  f.c_ = c;
  return f;
}

PropFormula PropFormula::two_byte(double a, double b, double c) {
  PropFormula f;
  f.kind_ = Kind::kTwoByte;
  f.a_ = a;
  f.b_ = b;
  f.c_ = c;
  return f;
}

PropFormula PropFormula::product(double a, double b) {
  PropFormula f;
  f.kind_ = Kind::kProduct;
  f.a_ = a;
  f.b_ = b;
  return f;
}

double combine_raw(std::span<const std::uint8_t> raw) {
  double v = 0.0;
  for (std::uint8_t byte : raw) v = v * 256.0 + byte;
  return v;
}

double PropFormula::eval(std::span<const std::uint8_t> raw) const {
  if (raw.empty()) return 0.0;
  const double x0 = raw[0];
  const double x1 = raw.size() > 1 ? raw[1] : 0.0;
  switch (kind_) {
    case Kind::kEnum:
      return combine_raw(raw);
    case Kind::kLinear:
    case Kind::kQuadratic:
      return eval_x(combine_raw(raw));
    case Kind::kTwoByte:
    case Kind::kProduct:
      return eval_xy(x0, x1);
  }
  return 0.0;
}

double PropFormula::eval_x(double x) const {
  switch (kind_) {
    case Kind::kLinear:
      return a_ * x + b_;
    case Kind::kQuadratic:
      return a_ * x * x + b_ * x + c_;
    default:
      return x;
  }
}

double PropFormula::eval_xy(double x0, double x1) const {
  switch (kind_) {
    case Kind::kTwoByte:
      return a_ * x0 + b_ * x1 + c_;
    case Kind::kProduct:
      return a_ * x0 * x1 + b_;
    default:
      return eval_x(x0 * 256.0 + x1);
  }
}

namespace {

std::string num(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

// Render "a*X" omitting unit coefficients, "+ b" omitting zero offsets.
std::string affine(const std::string& term, double coeff, double offset) {
  std::string s;
  if (coeff == 1.0) {
    s = term;
  } else {
    s = num(coeff) + "*" + term;
  }
  if (offset > 0.0) s += " + " + num(offset);
  if (offset < 0.0) s += " - " + num(-offset);
  return s;
}

}  // namespace

std::string PropFormula::repr() const {
  switch (kind_) {
    case Kind::kEnum:
      return "(enum)";
    case Kind::kLinear:
      return "Y = " + affine("X", a_, b_);
    case Kind::kQuadratic: {
      std::string s = "Y = " + num(a_) + "*X^2";
      if (b_ != 0.0) s += (b_ > 0 ? " + " : " - ") + num(std::abs(b_)) + "*X";
      if (c_ != 0.0) s += (c_ > 0 ? " + " : " - ") + num(std::abs(c_));
      return s;
    }
    case Kind::kTwoByte: {
      std::string s = "Y = " + num(a_) + "*X0 + " + num(b_) + "*X1";
      if (c_ != 0.0) s += (c_ > 0 ? " + " : " - ") + num(std::abs(c_));
      return s;
    }
    case Kind::kProduct:
      return "Y = " + affine("X0*X1", a_, b_);
  }
  return "?";
}

}  // namespace dpr::vehicle
