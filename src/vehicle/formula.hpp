#pragma once
// Proprietary decode formulas: the manufacturer-defined mapping from the
// raw bytes of an ESV field to the physical value a diagnostic tool
// displays (§2.3). These are the objects DP-Reverser reverse engineers;
// the vehicle simulator owns them as ground truth, and the diagnostic-tool
// model owns a copy as its "built-in" knowledge.

#include <cstdint>
#include <span>
#include <string>

namespace dpr::vehicle {

/// Closed-form formula families observed in the paper's evaluation
/// (Tables 5-7, §4.3) plus a quadratic family for the nonlinear cases GP
/// handles and the baselines cannot.
class PropFormula {
 public:
  enum class Kind {
    kEnum,       // status value: no formula (Table 6 "#ESV (Enum)")
    kLinear,     // Y = a*X + b            over the combined raw integer
    kQuadratic,  // Y = a*X^2 + b*X + c
    kTwoByte,    // Y = a*X0 + b*X1 + c    over the two raw bytes
    kProduct,    // Y = a*X0*X1 + b        (KWP-style product forms)
  };

  static PropFormula enumeration();
  static PropFormula linear(double a, double b = 0.0);
  static PropFormula quadratic(double a, double b, double c);
  static PropFormula two_byte(double a, double b, double c = 0.0);
  static PropFormula product(double a, double b = 0.0);

  Kind kind() const { return kind_; }
  bool is_enum() const { return kind_ == Kind::kEnum; }

  /// Physical value for raw bytes (big-endian combination for kLinear /
  /// kQuadratic; per-byte for kTwoByte / kProduct, which require >= 2
  /// bytes). Enum formulas return the raw integer unchanged.
  double eval(std::span<const std::uint8_t> raw) const;

  /// Evaluate on already-separated operands (x = combined value, used by
  /// equivalence checks).
  double eval_xy(double x0, double x1) const;
  double eval_x(double x) const;

  double a() const { return a_; }
  double b() const { return b_; }
  double c() const { return c_; }

  /// Ground-truth rendering, e.g. "0.1*X - 40" or "64.1*X0 + 0.241*X1".
  std::string repr() const;

 private:
  Kind kind_ = Kind::kEnum;
  double a_ = 1.0, b_ = 0.0, c_ = 0.0;
};

/// Combine raw bytes big-endian into one integer value.
double combine_raw(std::span<const std::uint8_t> raw);

}  // namespace dpr::vehicle
