#include "vehicle/generator.hpp"

#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace dpr::vehicle {

namespace {

const char* kMakes[] = {"Aurora",  "Cascade", "Helios", "Meridian",
                        "Nimbus",  "Orion",   "Polaris", "Quasar",
                        "Sierra",  "Vega",    "Zenith",  "Atlas"};

const char* kEcuNames[] = {"Engine",       "Main Body",
                           "ABS/ESP",      "Instrument Cluster",
                           "Gateway",      "Transmission",
                           "Climate Control", "Steering Assist"};

/// The diagnostic-tool profiles diagtool::profile_by_name knows; any
/// other string silently falls back to the Techstream profile, which
/// would make the tool mix narrower than intended.
const char* kTools[] = {"AUTEL 919", "LAUNCH X431", "VCDS", "Techstream"};

std::size_t range_draw(util::Rng& rng, std::size_t lo, std::size_t hi,
                       const char* what) {
  if (lo > hi) {
    throw std::invalid_argument(std::string("GeneratorConfig: ") + what +
                                " range is inverted");
  }
  return static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(lo),
                      static_cast<std::int64_t>(hi)));
}

/// Draw an unused id uniformly from [lo, hi], rejecting collisions.
std::uint16_t draw_id(util::Rng& rng, std::set<std::uint16_t>& used,
                      std::uint16_t lo, std::uint16_t hi) {
  if (used.size() >= static_cast<std::size_t>(hi - lo + 1)) {
    throw std::invalid_argument("generator id space exhausted");
  }
  for (;;) {
    const auto id = static_cast<std::uint16_t>(rng.uniform_int(lo, hi));
    if (used.insert(id).second) return id;
  }
}

/// Names inside one car get an index suffix on repeat draws so UI rows
/// stay distinguishable (same policy as the catalog builder).
std::string dedup_name(const char* base, std::set<std::string>& used,
                       std::size_t index) {
  std::string name = base;
  if (!used.insert(name).second) {
    name += " #" + std::to_string(index);
    used.insert(name);
  }
  return name;
}

}  // namespace

CarSpec generate_car(const GeneratorConfig& config, std::uint64_t seed) {
  util::Rng rng(seed ^ 0x47454E43415253ULL);  // "GENCARS"

  CarSpec spec;
  spec.gen_seed = seed;
  char label[16];
  std::snprintf(label, sizeof label, "Gen-%04llX",
                static_cast<unsigned long long>(seed & 0xFFFF));
  spec.label = label;
  spec.model = std::string(kMakes[rng.uniform_int(0, 11)]) + " " +
               std::to_string(100 + rng.uniform_int(0, 899));
  spec.tool = kTools[rng.uniform_int(0, 3)];

  spec.protocol = rng.chance(config.kwp_fraction) ? Protocol::kKwp2000
                                                  : Protocol::kUds;
  if (spec.protocol == Protocol::kUds) {
    spec.transport = rng.chance(config.bmw_fraction)
                         ? TransportKind::kBmwFraming
                         : TransportKind::kIsoTp;
    spec.io_service = rng.chance(config.kwp30_io_fraction)
                          ? IoService::kKwp30
                          : IoService::kUds2F;
  } else {
    spec.transport = rng.chance(config.vwtp_fraction)
                         ? TransportKind::kVwTp20
                         : TransportKind::kIsoTp;
    spec.io_service = IoService::kKwp30;
  }

  // --- ECU inventory --------------------------------------------------------
  // Same addressing scheme as the catalog: it keeps every request /
  // response id clear of the OBD functional pair (0x7DF / 0x7E8) for up
  // to 32 ECUs, which validate_spec() enforces below.
  const std::size_t n_ecus = std::min<std::size_t>(
      32, std::max<std::size_t>(
              1, range_draw(rng, config.ecus_min, config.ecus_max, "ecus")));
  for (std::size_t e = 0; e < n_ecus; ++e) {
    EcuSpec ecu;
    ecu.name = kEcuNames[e % (sizeof kEcuNames / sizeof *kEcuNames)];
    if (e >= sizeof kEcuNames / sizeof *kEcuNames) {
      ecu.name += " #" + std::to_string(e);
    }
    ecu.address = static_cast<std::uint8_t>(0x12 + e);
    if (spec.transport == TransportKind::kBmwFraming) {
      ecu.request_id = 0x6F1;  // shared tester id; target in byte 0
      ecu.response_id = 0x640 + ecu.address;
    } else if (e == 0 && spec.protocol == Protocol::kUds) {
      ecu.request_id = 0x7E0;
      ecu.response_id = 0x7E8;
    } else {
      ecu.request_id = 0x710 + 2 * static_cast<std::uint32_t>(e);
      ecu.response_id = ecu.request_id + 1;
    }
    ecu.supports_obd = (e == 0);
    spec.ecus.push_back(std::move(ecu));
  }

  // --- Readable signals -----------------------------------------------------
  const std::size_t n_formula = range_draw(
      rng, config.formula_signals_min, config.formula_signals_max, "formula");
  const std::size_t n_enum = range_draw(rng, config.enum_signals_min,
                                        config.enum_signals_max, "enum");
  spec.formula_esv_count = n_formula;
  spec.enum_esv_count = n_enum;
  std::set<std::string> signal_names;

  if (spec.protocol == Protocol::kUds) {
    const auto& pool = uds_signal_templates();
    std::set<std::uint16_t> dids;
    std::vector<UdsSignalSpec> signals;
    for (std::size_t i = 0; i < n_formula + n_enum; ++i) {
      UdsSignalSpec sig;
      if (i < n_formula) {
        const auto& entry = pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
        sig.name = dedup_name(entry.name, signal_names, i);
        sig.unit = entry.unit;
        sig.data_bytes = entry.bytes;
        sig.formula = entry.formula;
        sig.raw_lo = entry.lo;
        sig.raw_hi = entry.hi;
        sig.pattern = entry.pattern;
        sig.independent_bytes = entry.independent_bytes;
      } else {
        const auto& names = enum_name_templates();
        sig.name = dedup_name(
            names[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(names.size()) - 1))],
            signal_names, i);
        sig.data_bytes = 1;
        sig.formula = PropFormula::enumeration();
        sig.raw_lo = 0;
        sig.raw_hi = static_cast<std::uint32_t>(1 + rng.uniform_int(0, 2));
        sig.pattern = RawSignal::Pattern::kToggle;
      }
      sig.did = draw_id(rng, dids, 0xF000, 0xFDFF);
      signals.push_back(std::move(sig));
    }
    for (std::size_t i = 0; i < signals.size(); ++i) {
      spec.ecus[i % n_ecus].uds_signals.push_back(std::move(signals[i]));
    }
  } else {
    // KWP car: every signal is a 3-byte ESV inside a measuring block.
    const auto& pool = kwp_esv_templates();
    std::vector<KwpEsvSpec> esvs;
    for (std::size_t i = 0; i < n_formula; ++i) {
      const auto& entry = pool[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
      KwpEsvSpec esv;
      esv.formula_type = entry.type;
      esv.name = dedup_name(entry.name, signal_names, i);
      esv.unit = entry.unit;
      esv.x0_lo = entry.x0_lo;
      esv.x0_hi = entry.x0_hi;
      esv.x1_lo = entry.x1_lo;
      esv.x1_hi = entry.x1_hi;
      esv.pattern = entry.pattern;
      esvs.push_back(std::move(esv));
    }
    for (std::size_t i = 0; i < n_enum; ++i) {
      const auto& names = enum_name_templates();
      KwpEsvSpec esv;
      esv.formula_type = 0x11;  // status kind
      esv.name = dedup_name(
          names[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(names.size()) - 1))],
          signal_names, n_formula + i);
      esv.is_enum = true;
      esv.x0_lo = esv.x0_hi = 0x00;
      esv.x1_lo = 0;
      esv.x1_hi = 1;
      esv.pattern = RawSignal::Pattern::kToggle;
      esvs.push_back(std::move(esv));
    }
    // Measuring blocks of 1..4 ESVs (Fig. 3). Local ids are drawn from
    // [0x01, 0x7F]; actuator local ids live in [0x80, 0xEF], so the two
    // tables can never collide on a generated car.
    std::set<std::uint16_t> local_ids;
    std::size_t i = 0;
    std::size_t block_index = 0;
    while (i < esvs.size()) {
      KwpLocalIdSpec block;
      block.local_id =
          static_cast<std::uint8_t>(draw_id(rng, local_ids, 0x01, 0x7F));
      block.group_name = "Measuring Block " + std::to_string(block.local_id);
      const std::size_t take = std::min<std::size_t>(
          esvs.size() - i, 1 + static_cast<std::size_t>(rng.uniform_int(0, 3)));
      for (std::size_t k = 0; k < take; ++k) {
        block.esvs.push_back(std::move(esvs[i++]));
      }
      spec.ecus[block_index % n_ecus].kwp_local_ids.push_back(
          std::move(block));
      ++block_index;
    }
  }

  // --- Actuators ------------------------------------------------------------
  const std::size_t n_actuators =
      range_draw(rng, config.actuators_min, config.actuators_max, "actuators");
  spec.ecr_count = n_actuators;
  const auto& apool = actuator_templates();
  std::set<std::string> actuator_names;
  std::set<std::uint16_t> actuator_ids;
  for (std::size_t i = 0; i < n_actuators; ++i) {
    const auto& entry = apool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(apool.size()) - 1))];
    ActuatorSpec act;
    act.name = dedup_name(entry.name, actuator_names, i);
    act.example_state.assign(entry.state.begin(), entry.state.end());
    act.id = spec.io_service == IoService::kUds2F
                 ? draw_id(rng, actuator_ids, 0x0900, 0x0EFF)
                 : draw_id(rng, actuator_ids, 0x80, 0xEF);
    spec.ecus[i % n_ecus].actuators.push_back(std::move(act));
  }

  validate_spec(spec);
  return spec;
}

std::vector<CarSpec> generate_fleet(const GeneratorConfig& config,
                                    std::uint64_t base_seed,
                                    std::size_t count) {
  std::vector<CarSpec> fleet;
  fleet.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    fleet.push_back(generate_car(config, base_seed + i));
  }
  return fleet;
}

}  // namespace dpr::vehicle
