#pragma once
// Procedural vehicle generator: synthesizes arbitrary-size fleets beyond
// the 18 hand-built Table-3 cars. Each spec is a pure function of
// (GeneratorConfig, seed) — same inputs, byte-identical spec (and thus
// identical spec_digest) on every platform and thread count — and carries
// full ground truth (decode formulas, KWP formula types, actuator
// states), so Campaign::score_findings scores a generated car exactly
// like a catalog car.
//
// Generated inventories are non-colliding by construction: CAN ids follow
// the catalog's addressing scheme (engine on 0x7E0/0x7E8, others on
// 0x710+2e, BMW framing on the shared tester id 0x6F1 with per-ECU
// response ids), and DIDs / KWP local ids / actuator ids are drawn by
// rejection sampling against per-car occupancy sets. Every spec is passed
// through validate_spec() before it is returned.

#include <cstdint>
#include <vector>

#include "vehicle/catalog.hpp"

namespace dpr::vehicle {

/// Knobs for the shape of generated cars. Defaults produce mid-size cars
/// (2-4 ECUs, 4-14 formula signals) with the protocol mix of the paper's
/// fleet: mostly UDS over ISO-TP, a KWP/VW-TP minority, a BMW-framing
/// minority, both IO-control dialects.
struct GeneratorConfig {
  /// ECU inventory per car; clamped to [1, 32] (the 0x710+2e CAN id
  /// scheme stays clear of the 0x7DF/0x7E0/0x7E8 OBD ids up to 32 ECUs).
  std::size_t ecus_min = 2;
  std::size_t ecus_max = 4;
  /// Readable signals with decode formulas (Table 6 "#ESV (formula)").
  std::size_t formula_signals_min = 4;
  std::size_t formula_signals_max = 14;
  /// Status/enum signals (Table 6 "#ESV (Enum)").
  std::size_t enum_signals_min = 0;
  std::size_t enum_signals_max = 6;
  /// Controllable components (Table 11 "#ECR").
  std::size_t actuators_min = 0;
  std::size_t actuators_max = 5;
  /// Probability a car speaks KWP 2000 instead of UDS.
  double kwp_fraction = 0.25;
  /// Of the UDS cars: probability of BMW framing instead of ISO-TP.
  double bmw_fraction = 0.2;
  /// Of the KWP cars: probability of VW TP 2.0 instead of ISO-TP.
  double vwtp_fraction = 0.6;
  /// Of the UDS cars: probability of the local-id IO service (0x30)
  /// instead of UDS 0x2F. KWP cars always use 0x30.
  double kwp30_io_fraction = 0.4;
};

/// Deterministically synthesize one car from (config, seed). The spec's
/// gen_seed field records the seed; its label is "Gen-XXXX" (low seed
/// bits) and its digest covers the full inventory, so distinct seeds give
/// distinct digests. Throws std::invalid_argument if the configured
/// ranges are inverted (min > max).
CarSpec generate_car(const GeneratorConfig& config, std::uint64_t seed);

/// A fleet of `count` cars seeded base_seed, base_seed+1, ...
std::vector<CarSpec> generate_fleet(const GeneratorConfig& config,
                                    std::uint64_t base_seed,
                                    std::size_t count);

}  // namespace dpr::vehicle
