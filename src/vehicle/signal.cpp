#include "vehicle/signal.hpp"

#include <algorithm>
#include <cmath>

namespace dpr::vehicle {

namespace {
constexpr util::SimTime kRefreshTick = 50 * util::kMillisecond;
}

RawSignal::RawSignal(Pattern pattern, std::uint32_t lo, std::uint32_t hi,
                     util::Rng rng, double period_s)
    : pattern_(pattern),
      lo_(std::min(lo, hi)),
      hi_(std::max(lo, hi)),
      rng_(rng),
      period_s_(period_s),
      phase_(rng_.uniform(0.0, 2.0 * M_PI)),
      current_(lo_ + static_cast<std::uint32_t>(
                         rng_.uniform_int(0, static_cast<std::int64_t>(
                                                 hi_ - lo_)))) {}

std::uint32_t RawSignal::sample(util::SimTime t) {
  const util::SimTime tick = t / kRefreshTick;
  if (tick == last_tick_) return current_;
  last_tick_ = tick;

  const double span = static_cast<double>(hi_ - lo_);
  switch (pattern_) {
    case Pattern::kConstant:
      break;
    case Pattern::kRandomWalk: {
      // Step up to 4% of the range per tick; reflect at bounds.
      const double step = rng_.normal(0.0, std::max(1.0, span * 0.04));
      double next = static_cast<double>(current_) + step;
      next = std::clamp(next, static_cast<double>(lo_),
                        static_cast<double>(hi_));
      current_ = static_cast<std::uint32_t>(std::llround(next));
      break;
    }
    case Pattern::kSine: {
      const double seconds =
          static_cast<double>(t) / static_cast<double>(util::kSecond);
      const double u =
          0.5 + 0.5 * std::sin(2.0 * M_PI * seconds / period_s_ + phase_);
      current_ = lo_ + static_cast<std::uint32_t>(std::llround(u * span));
      break;
    }
    case Pattern::kToggle: {
      if (rng_.chance(0.15)) {
        current_ = lo_ + static_cast<std::uint32_t>(rng_.uniform_int(
                             0, static_cast<std::int64_t>(hi_ - lo_)));
      }
      break;
    }
  }
  return current_;
}

std::vector<std::uint8_t> raw_to_bytes(std::uint32_t raw, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[n - 1 - i] = static_cast<std::uint8_t>((raw >> (8 * i)) & 0xFF);
  }
  return out;
}

}  // namespace dpr::vehicle
