#pragma once
// Raw-domain signal sources: simulated sensor dynamics.
//
// ECUs store sensor readings as raw counts; the proprietary formula maps
// counts to physical values. The simulator therefore evolves the *raw*
// value (random walk / sine / constant in count space) and derives the
// physical value via the formula — exactly the direction real hardware
// works, and it guarantees the (X, Y) ground-truth relation that the
// reverse-engineering pipeline must rediscover.

#include <cstdint>
#include <vector>

#include "util/clock.hpp"
#include "util/rng.hpp"

namespace dpr::vehicle {

class RawSignal {
 public:
  enum class Pattern {
    kConstant,    // frozen raw value (degenerate fields, §4.3 "X0 = 0x00")
    kRandomWalk,  // bounded random walk — live sensor under test
    kSine,        // periodic sweep (engine rpm during revving)
    kToggle,      // enum-style: hops among a small value set
  };

  /// A signal spanning raw values [lo, hi] with the given dynamics.
  RawSignal(Pattern pattern, std::uint32_t lo, std::uint32_t hi,
            util::Rng rng, double period_s = 8.0);

  /// Current raw value at simulated time `t`. Values are stable within a
  /// 50 ms refresh tick, mimicking an ECU's sensor update rate.
  std::uint32_t sample(util::SimTime t);

  std::uint32_t lo() const { return lo_; }
  std::uint32_t hi() const { return hi_; }

 private:
  Pattern pattern_;
  std::uint32_t lo_;
  std::uint32_t hi_;
  util::Rng rng_;
  double period_s_;
  double phase_;
  std::uint32_t current_;
  util::SimTime last_tick_ = -1;
};

/// Render a raw value into `n` big-endian bytes.
std::vector<std::uint8_t> raw_to_bytes(std::uint32_t raw, std::size_t n);

}  // namespace dpr::vehicle
