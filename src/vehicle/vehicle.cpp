#include "vehicle/vehicle.hpp"

namespace dpr::vehicle {

Vehicle::Vehicle(const CarSpec& spec, can::CanBus& bus,
                 util::SimClock& clock, std::uint64_t seed,
                 const util::FaultConfig& faults)
    : spec_(spec), clock_(clock) {
#ifndef NDEBUG
  // Generated specs are validated at generation time; debug builds also
  // re-check anything handed in directly (a colliding DID or CAN id
  // would silently corrupt the simulation, not fail it).
  validate_spec(spec_);
#endif
  // Catalog cars (gen_seed 0) salt exactly as pre-generator builds, so
  // their dynamics streams — and every downstream finding — are
  // unchanged. Generated cars fold the generator seed in, giving each
  // car in a fleet independent streams even under one campaign seed.
  util::Rng rng(seed ^ (0xBEEF0000ULL + car_stream_salt(spec_)));
  for (const auto& ecu_spec : spec_.ecus) {
    ecus_.push_back(std::make_unique<EcuSim>(ecu_spec, spec_, bus, clock,
                                             rng.fork(), faults));
  }
}

Vehicle::Vehicle(CarId id, can::CanBus& bus, util::SimClock& clock,
                 std::uint64_t seed, const util::FaultConfig& faults)
    : Vehicle(car_spec(id), bus, clock, seed, faults) {}

EcuSim* Vehicle::find_ecu_with_did(uds::Did did) {
  for (auto& ecu : ecus_) {
    for (const auto& sig : ecu->spec().uds_signals) {
      if (sig.did == did) return ecu.get();
    }
  }
  return nullptr;
}

EcuSim* Vehicle::find_ecu_with_actuator(std::uint16_t id) {
  for (auto& ecu : ecus_) {
    if (ecu->actuator(id) != nullptr) return ecu.get();
  }
  return nullptr;
}

std::optional<double> Vehicle::physical_value(uds::Did did) const {
  for (const auto& ecu : ecus_) {
    if (auto value = ecu->physical_value(did)) return value;
  }
  return std::nullopt;
}

std::optional<double> Vehicle::dashboard_value(
    const std::string& signal_name) const {
  for (const auto& ecu : ecus_) {
    for (const auto& sig : ecu->spec().uds_signals) {
      if (sig.name == signal_name) return ecu->physical_value(sig.did);
    }
    std::size_t block_index = 0;
    for (const auto& block : ecu->spec().kwp_local_ids) {
      for (std::size_t i = 0; i < block.esvs.size(); ++i) {
        if (block.esvs[i].name == signal_name) {
          return ecu->kwp_physical_value(block.local_id, i);
        }
      }
      ++block_index;
    }
  }
  return std::nullopt;
}

}  // namespace dpr::vehicle
