#include "vehicle/vehicle.hpp"

namespace dpr::vehicle {

Vehicle::Vehicle(CarId id, can::CanBus& bus, util::SimClock& clock,
                 std::uint64_t seed, const util::FaultConfig& faults)
    : spec_(car_spec(id)), clock_(clock) {
  util::Rng rng(seed ^ (0xBEEF0000ULL + static_cast<std::uint64_t>(id)));
  for (const auto& ecu_spec : spec_.ecus) {
    ecus_.push_back(std::make_unique<EcuSim>(ecu_spec, spec_, bus, clock,
                                             rng.fork(), faults));
  }
}

EcuSim* Vehicle::find_ecu_with_did(uds::Did did) {
  for (auto& ecu : ecus_) {
    for (const auto& sig : ecu->spec().uds_signals) {
      if (sig.did == did) return ecu.get();
    }
  }
  return nullptr;
}

EcuSim* Vehicle::find_ecu_with_actuator(std::uint16_t id) {
  for (auto& ecu : ecus_) {
    if (ecu->actuator(id) != nullptr) return ecu.get();
  }
  return nullptr;
}

std::optional<double> Vehicle::physical_value(uds::Did did) const {
  for (const auto& ecu : ecus_) {
    if (auto value = ecu->physical_value(did)) return value;
  }
  return std::nullopt;
}

std::optional<double> Vehicle::dashboard_value(
    const std::string& signal_name) const {
  for (const auto& ecu : ecus_) {
    for (const auto& sig : ecu->spec().uds_signals) {
      if (sig.name == signal_name) return ecu->physical_value(sig.did);
    }
    std::size_t block_index = 0;
    for (const auto& block : ecu->spec().kwp_local_ids) {
      for (std::size_t i = 0; i < block.esvs.size(); ++i) {
        if (block.esvs[i].name == signal_name) {
          return ecu->kwp_physical_value(block.local_id, i);
        }
      }
      ++block_index;
    }
  }
  return std::nullopt;
}

}  // namespace dpr::vehicle
