#pragma once
// A complete simulated vehicle: every ECU of the car spec attached to one
// CAN bus behind the car's transport, plus dashboard access for the
// Table 7 validation experiment.

#include <memory>
#include <vector>

#include "can/bus.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"
#include "vehicle/catalog.hpp"
#include "vehicle/ecu.hpp"

namespace dpr::vehicle {

class Vehicle {
 public:
  /// Builds the car's ECUs on `bus`. `spec` may come from the catalog or
  /// from vehicle::Generator (it is copied; debug builds re-validate its
  /// invariants). `seed` controls all signal dynamics; `faults`, when
  /// enabled, arms every ECU's servers with deterministic 0x78/0x21 fault
  /// behaviour (signal dynamics are unaffected).
  Vehicle(const CarSpec& spec, can::CanBus& bus, util::SimClock& clock,
          std::uint64_t seed = 0xCA7, const util::FaultConfig& faults = {});

  /// Catalog convenience: Vehicle(car_spec(id), ...).
  Vehicle(CarId id, can::CanBus& bus, util::SimClock& clock,
          std::uint64_t seed = 0xCA7, const util::FaultConfig& faults = {});

  Vehicle(const Vehicle&) = delete;
  Vehicle& operator=(const Vehicle&) = delete;

  const CarSpec& spec() const { return spec_; }
  CarId id() const { return spec_.id; }

  std::vector<std::unique_ptr<EcuSim>>& ecus() { return ecus_; }
  const std::vector<std::unique_ptr<EcuSim>>& ecus() const { return ecus_; }

  /// ECU by catalog index.
  EcuSim& ecu(std::size_t index) { return *ecus_.at(index); }

  /// Find the ECU owning a given UDS signal / actuator id.
  EcuSim* find_ecu_with_did(uds::Did did);
  EcuSim* find_ecu_with_actuator(std::uint16_t id);

  /// Ground-truth physical value of a UDS signal anywhere in the car.
  std::optional<double> physical_value(uds::Did did) const;

  /// Dashboard readout (Table 7): the physical value of the named signal
  /// as the instrument cluster would display it.
  std::optional<double> dashboard_value(const std::string& signal_name) const;

 private:
  CarSpec spec_;
  util::SimClock& clock_;
  std::vector<std::unique_ptr<EcuSim>> ecus_;
};

}  // namespace dpr::vehicle
