#include "vwtp/channel.hpp"

namespace dpr::vwtp {

Channel::Channel(can::CanBus& bus, ChannelConfig config)
    : bus_(bus), config_(config) {
  // Exact-id subscription; the id check stays for the extended flag and
  // the legacy full-fan-out path.
  bus_.attach(
      [this](const can::CanFrame& frame, util::SimTime) {
        if (frame.id() == config_.rx_id) on_frame(frame);
      },
      can::IdFilter::exact(config_.rx_id));
}

void Channel::send(std::span<const std::uint8_t> payload) {
  // ACK windows are honored by the peer replying asynchronously; the data
  // frames are queued up-front (the bus preserves order per sender).
  for (auto& frame : segment_message(config_.tx_id, payload, tx_sequence_)) {
    bus_.send(frame);
  }
  tx_sequence_ = static_cast<std::uint8_t>(
      (tx_sequence_ + (payload.size() + 6) / 7) & 0x0F);
  ++stats_.messages_sent;
}

void Channel::disconnect() {
  bus_.send(can::CanFrame(config_.tx_id, util::Bytes{0xA8}));
}

void Channel::on_frame(const can::CanFrame& frame) {
  const auto kind = classify(frame);
  if (!kind) return;

  if (*kind == FrameKind::kAck) {
    ++stats_.acks_received;
    return;
  }
  if (*kind == FrameKind::kChannelParamsRequest) {
    // Echo the proposed parameters back as accepted.
    util::Bytes params(frame.data().begin(), frame.data().end());
    params[0] = 0xA1;
    bus_.send(can::CanFrame(config_.tx_id, params));
    return;
  }
  if (*kind != FrameKind::kData) return;

  const auto info = decode_data(frame);
  if (!info) return;
  const bool ack_due = expects_ack(info->op);
  if (auto message = reassembler_.feed(frame)) {
    ++stats_.messages_received;
    if (ack_due) {
      bus_.send(encode_ack(config_.tx_id,
                           static_cast<std::uint8_t>((info->sequence + 1) &
                                                     0x0F)));
      ++stats_.acks_sent;
    }
    if (handler_) handler_(*message);
    return;
  }
  if (ack_due) {
    bus_.send(encode_ack(
        config_.tx_id,
        static_cast<std::uint8_t>((info->sequence + 1) & 0x0F)));
    ++stats_.acks_sent;
  }
}

can::CanFrame encode_setup_request(std::uint8_t dest_ecu,
                                   can::CanId proposed_rx,
                                   std::uint8_t app_type) {
  util::Bytes data{dest_ecu,
                   0xC0,
                   static_cast<std::uint8_t>(proposed_rx.value & 0xFF),
                   static_cast<std::uint8_t>((proposed_rx.value >> 8) & 0x07),
                   0x00,
                   0x10,  // "tx id invalid: ECU decides"
                   app_type};
  return can::CanFrame(can::CanId{kBroadcastId, false}, data);
}

can::CanFrame encode_setup_response(std::uint8_t dest_ecu, can::CanId ecu_rx,
                                    can::CanId ecu_tx) {
  util::Bytes data{0x00,
                   0xD0,
                   static_cast<std::uint8_t>(ecu_rx.value & 0xFF),
                   static_cast<std::uint8_t>((ecu_rx.value >> 8) & 0x07),
                   static_cast<std::uint8_t>(ecu_tx.value & 0xFF),
                   static_cast<std::uint8_t>((ecu_tx.value >> 8) & 0x07),
                   0x01};
  return can::CanFrame(can::CanId{kBroadcastId + dest_ecu, false}, data);
}

std::optional<SetupResult> decode_setup_response(const can::CanFrame& frame) {
  if (classify(frame) != FrameKind::kChannelSetupResponse) return std::nullopt;
  if (frame.dlc() < 7) return std::nullopt;
  SetupResult result;
  // The ECU's rx id is the tester's tx id and vice versa.
  result.tester_tx = can::CanId{
      static_cast<std::uint32_t>(frame.byte(2) | (frame.byte(3) << 8)),
      false};
  result.tester_rx = can::CanId{
      static_cast<std::uint32_t>(frame.byte(4) | (frame.byte(5) << 8)),
      false};
  return result;
}

}  // namespace dpr::vwtp
