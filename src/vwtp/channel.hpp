#pragma once
// Active TP 2.0 channel endpoint: performs channel setup on the broadcast
// id, exchanges channel parameters, then transfers messages with the
// ACK-windowed data opcodes. One side is the tester, the peer is the ECU.

#include <functional>

#include "can/bus.hpp"
#include "util/link.hpp"
#include "vwtp/vwtp.hpp"

namespace dpr::vwtp {

using MessageHandler = util::MessageLink::Handler;

struct ChannelConfig {
  can::CanId tx_id;  // id this side transmits data frames on
  can::CanId rx_id;  // id this side receives data frames on
  std::uint8_t block_size = 0x0F;  // frames per ACK window
};

/// A connected TP 2.0 data channel (post-setup). The broadcast handshake
/// is modeled by ChannelSetup below; a Channel assumes negotiated ids.
class Channel : public util::MessageLink {
 public:
  Channel(can::CanBus& bus, ChannelConfig config);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void set_message_handler(MessageHandler handler) override {
    handler_ = std::move(handler);
  }

  /// Segment and queue a full diagnostic message.
  void send(std::span<const std::uint8_t> payload) override;

  /// Send the 0xA8 disconnect control frame.
  void disconnect();

  struct Stats {
    std::size_t messages_sent = 0;
    std::size_t messages_received = 0;
    std::size_t acks_sent = 0;
    std::size_t acks_received = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void on_frame(const can::CanFrame& frame);

  can::CanBus& bus_;
  ChannelConfig config_;
  MessageHandler handler_;
  Stats stats_;
  Reassembler reassembler_;
  std::uint8_t tx_sequence_ = 0;
};

/// Channel-setup handshake on the broadcast id (0x200 + ECU offset).
/// The tester proposes ids; the ECU answers with the negotiated pair.
struct SetupResult {
  can::CanId tester_tx;  // tester -> ECU data id
  can::CanId tester_rx;  // ECU -> tester data id
};

/// Encode the tester's setup request: [dest, 0xC0, rx lo, rx hi, tx lo,
/// tx hi, app type].
can::CanFrame encode_setup_request(std::uint8_t dest_ecu,
                                   can::CanId proposed_rx,
                                   std::uint8_t app_type = 0x01);

/// Encode the ECU's positive setup response carrying the negotiated ids.
can::CanFrame encode_setup_response(std::uint8_t dest_ecu, can::CanId ecu_rx,
                                    can::CanId ecu_tx);

std::optional<SetupResult> decode_setup_response(const can::CanFrame& frame);

}  // namespace dpr::vwtp
