#include "vwtp/vwtp.hpp"

#include <algorithm>
#include <stdexcept>

namespace dpr::vwtp {

std::optional<FrameKind> classify(const can::CanFrame& frame) {
  if (frame.dlc() == 0) return std::nullopt;
  const std::uint8_t b0 = frame.byte(0);

  // Channel setup frames live on the broadcast range and carry the opcode
  // in byte 1: [dest, 0xC0/0xD0, ...].
  if (frame.dlc() >= 2 && (frame.byte(1) == 0xC0 || frame.byte(1) == 0xD0)) {
    return frame.byte(1) == 0xC0 ? FrameKind::kChannelSetupRequest
                                 : FrameKind::kChannelSetupResponse;
  }

  switch (b0) {
    case 0xA0:
      return FrameKind::kChannelParamsRequest;
    case 0xA1:
      return FrameKind::kChannelParamsResponse;
    case 0xA3:
      return FrameKind::kBreak;
    case 0xA8:
      return FrameKind::kDisconnect;
    default:
      break;
  }

  const std::uint8_t op = b0 >> 4;
  if (op <= 0x3) return FrameKind::kData;
  if (op == 0x9 || op == 0xB) return FrameKind::kAck;
  return std::nullopt;
}

bool is_control_frame(FrameKind kind) {
  return kind != FrameKind::kData;
}

std::optional<DataFrameInfo> decode_data(const can::CanFrame& frame) {
  if (classify(frame) != FrameKind::kData) return std::nullopt;
  DataFrameInfo info;
  info.op = static_cast<DataOp>(frame.byte(0) >> 4);
  info.sequence = frame.byte(0) & 0x0F;
  auto data = frame.data();
  info.payload.assign(data.begin() + 1, data.end());
  return info;
}

can::CanFrame encode_data(can::CanId id, DataOp op, std::uint8_t sequence,
                          std::span<const std::uint8_t> chunk) {
  if (chunk.empty() || chunk.size() > 7) {
    throw std::invalid_argument("TP 2.0 data chunk must be 1..7 bytes");
  }
  util::Bytes data;
  data.push_back(static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(op) << 4) | (sequence & 0x0F)));
  data.insert(data.end(), chunk.begin(), chunk.end());
  return can::CanFrame(id, data);
}

can::CanFrame encode_ack(can::CanId id, std::uint8_t next_sequence,
                         bool ready) {
  const std::uint8_t op = ready ? 0x9 : 0xB;
  util::Bytes data{static_cast<std::uint8_t>((op << 4) |
                                             (next_sequence & 0x0F))};
  return can::CanFrame(id, data);
}

std::vector<can::CanFrame> segment_message(
    can::CanId id, std::span<const std::uint8_t> payload,
    std::uint8_t first_sequence) {
  if (payload.empty()) {
    throw std::invalid_argument("TP 2.0 message must not be empty");
  }
  std::vector<can::CanFrame> frames;
  std::uint8_t sequence = static_cast<std::uint8_t>(first_sequence & 0x0F);
  for (std::size_t offset = 0; offset < payload.size(); offset += 7) {
    const std::size_t n = std::min<std::size_t>(7, payload.size() - offset);
    const bool last = offset + n >= payload.size();
    frames.push_back(encode_data(
        id, last ? DataOp::kLastExpectAck : DataOp::kMoreNoAck, sequence,
        payload.subspan(offset, n)));
    sequence = static_cast<std::uint8_t>((sequence + 1) & 0x0F);
  }
  return frames;
}

void Reassembler::reset() {
  buffer_.clear();
  have_sequence_ = false;
  next_sequence_ = 0;
}

std::optional<util::Bytes> Reassembler::feed(const can::CanFrame& frame) {
  const auto kind = classify(frame);
  if (kind != FrameKind::kData) return std::nullopt;
  auto info = decode_data(frame);
  if (!info) return std::nullopt;

  if (have_sequence_ && info->sequence != next_sequence_) {
    ++sequence_errors_;
    reset();
    return std::nullopt;
  }
  have_sequence_ = true;
  next_sequence_ = static_cast<std::uint8_t>((info->sequence + 1) & 0x0F);

  buffer_.insert(buffer_.end(), info->payload.begin(), info->payload.end());
  if (is_last(info->op)) {
    util::Bytes message = std::move(buffer_);
    reset();
    return message;
  }
  return std::nullopt;
}

}  // namespace dpr::vwtp
