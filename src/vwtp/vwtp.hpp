#pragma once
// VW Transport Protocol 2.0 (TP 2.0) — the Volkswagen-group transport used
// to carry KWP 2000 over CAN (§2.3.1, Table 1, and §3.2).
//
// Frame taxonomy (first payload byte):
//   * Channel setup   — exchanged on the broadcast id 0x200 (+ ecu offset):
//                       opcode byte 1 is 0xC0 (request) / 0xD0 (positive).
//   * Channel params  — 0xA0 request / 0xA1 response, 0xA3 break,
//                       0xA8 disconnect, on the negotiated data ids.
//   * Data            — high nibble 0x0..0x3, low nibble = 4-bit sequence:
//                       bit0 of the opcode nibble set   -> last frame
//                       bit1 of the opcode nibble clear -> ACK expected
//   * ACK             — high nibble 0x9 (ready) / 0xB (not ready), low
//                       nibble = next expected sequence.
//
// Unlike ISO-TP, data frames carry no length field: receivers detect the
// end of a message from the last-frame opcode (the very property §3.2
// step 2 has to handle when assembling payloads).

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "can/frame.hpp"
#include "util/hex.hpp"

namespace dpr::vwtp {

/// Broadcast id on which channel setup requests are sent.
constexpr std::uint32_t kBroadcastId = 0x200;

enum class FrameKind {
  kChannelSetupRequest,
  kChannelSetupResponse,
  kChannelParamsRequest,
  kChannelParamsResponse,
  kDisconnect,
  kBreak,
  kData,
  kAck,
};

/// Data-frame opcodes (high nibble of byte 0).
enum class DataOp : std::uint8_t {
  kMoreExpectAck = 0x0,
  kLastExpectAck = 0x1,
  kMoreNoAck = 0x2,
  kLastNoAck = 0x3,
};

constexpr bool is_last(DataOp op) {
  return op == DataOp::kLastExpectAck || op == DataOp::kLastNoAck;
}
constexpr bool expects_ack(DataOp op) {
  return op == DataOp::kMoreExpectAck || op == DataOp::kLastExpectAck;
}

/// Classify a frame that belongs to a TP 2.0 conversation.
std::optional<FrameKind> classify(const can::CanFrame& frame);

/// True for the frame kinds §3.2 step 1 screens out (they carry no
/// diagnostic payload): setup, params, break, disconnect, ACK.
bool is_control_frame(FrameKind kind);

struct DataFrameInfo {
  DataOp op = DataOp::kMoreExpectAck;
  std::uint8_t sequence = 0;
  util::Bytes payload;  // up to 7 bytes
};
std::optional<DataFrameInfo> decode_data(const can::CanFrame& frame);

can::CanFrame encode_data(can::CanId id, DataOp op, std::uint8_t sequence,
                          std::span<const std::uint8_t> chunk);

can::CanFrame encode_ack(can::CanId id, std::uint8_t next_sequence,
                         bool ready = true);

/// Split `payload` into the TP 2.0 data-frame sequence: intermediate
/// frames use kMoreNoAck, the final frame kLastExpectAck, sequence numbers
/// start at `first_sequence` and wrap at 16.
std::vector<can::CanFrame> segment_message(
    can::CanId id, std::span<const std::uint8_t> payload,
    std::uint8_t first_sequence = 0);

/// Passive reassembler for one direction of a TP 2.0 conversation: data
/// frames are concatenated until a last-frame opcode arrives (§3.2 step 2).
class Reassembler {
 public:
  std::optional<util::Bytes> feed(const can::CanFrame& frame);

  bool in_progress() const { return !buffer_.empty(); }
  std::size_t sequence_errors() const { return sequence_errors_; }
  void reset();

 private:
  util::Bytes buffer_;
  bool have_sequence_ = false;
  std::uint8_t next_sequence_ = 0;
  std::size_t sequence_errors_ = 0;
};

}  // namespace dpr::vwtp
