#include <gtest/gtest.h>

#include "appanalysis/corpus.hpp"
#include "appanalysis/ir.hpp"
#include "appanalysis/taint.hpp"

namespace dpr::appanalysis {
namespace {

TEST(Prefixes, ClassifiedByServiceByte) {
  EXPECT_EQ(classify_prefix("41 0C"), ProtocolClass::kObd2);
  EXPECT_EQ(classify_prefix("62 F4 3C"), ProtocolClass::kUds);
  EXPECT_EQ(classify_prefix("61 1A"), ProtocolClass::kKwp2000);
  EXPECT_EQ(classify_prefix(""), ProtocolClass::kUnknown);
  EXPECT_EQ(classify_prefix("59 02"), ProtocolClass::kUnknown);
}

TEST(Fig9, ExtractsTheEngineRpmFormula) {
  // The worked example of Fig. 9: formula v*0.25 + 64*v, condition
  // startsWith("41 0C").
  const auto report = analyze_app(fig9_example());
  ASSERT_EQ(report.formulas.size(), 1u);
  const auto& formula = report.formulas[0];
  EXPECT_EQ(formula.prefix, "41 0C");
  EXPECT_EQ(formula.protocol, ProtocolClass::kObd2);
  EXPECT_EQ(formula.variables, 2u);
  // The reconstructed expression contains both the 0.25 and 64 factors.
  EXPECT_NE(formula.expression.find("0.25"), std::string::npos);
  EXPECT_NE(formula.expression.find("64"), std::string::npos);
  EXPECT_NE(formula.condition.find("41 0C"), std::string::npos);
}

TEST(Taint, OpaqueCallBreaksPropagation) {
  // Build a minimal app where the parsed value goes through a helper.
  App app;
  app.name = "opaque";
  app.statements = {
      {Stmt::Kind::kReadApi, 0, -1, -1, 0, '+', "", 0, -1},
      {Stmt::Kind::kStartsWith, 1, 0, -1, 0, '+', "41 05", 0, -1},
      {Stmt::Kind::kIf, -1, 1, -1, 0, '+', "", 0, 0},
      {Stmt::Kind::kSubstr, 2, 0, -1, 0, '+', "", 0, -1},
      {Stmt::Kind::kParseInt, 3, 2, -1, 0, '+', "", 0, -1},
      {Stmt::Kind::kOpaqueCall, 4, 3, -1, 0, '+', "", 0, -1},
      {Stmt::Kind::kDisplay, -1, 4, -1, 0, '+', "", 0, -1},
      {Stmt::Kind::kLabel, -1, -1, -1, 0, '+', "", 0, 0},
  };
  const auto report = analyze_app(app);
  EXPECT_TRUE(report.formulas.empty());
  EXPECT_EQ(report.taint_breaks, 1u);
}

TEST(Taint, UntaintedMathIgnored) {
  // Math on constants unrelated to the response buffer is not a formula.
  App app;
  app.name = "unrelated";
  app.statements = {
      {Stmt::Kind::kReadApi, 0, -1, -1, 0, '+', "", 0, -1},
      {Stmt::Kind::kConst, 1, -1, -1, 3.0, '+', "", 0, -1},
      {Stmt::Kind::kConst, 2, -1, -1, 4.0, '+', "", 0, -1},
      {Stmt::Kind::kBinOp, 3, 1, 2, 0, '*', "", 0, -1},
      {Stmt::Kind::kDisplay, -1, 3, -1, 0, '+', "", 0, -1},
  };
  const auto report = analyze_app(app);
  EXPECT_TRUE(report.formulas.empty());
}

TEST(Corpus, HasExactly160Apps) {
  EXPECT_EQ(build_corpus().size(), 160u);
}

TEST(Corpus, CarlyAppsMatchTable12) {
  const auto corpus = build_corpus();
  const auto find = [&](const std::string& name) -> const CorpusEntry* {
    for (const auto& entry : corpus) {
      if (entry.app.name == name) return &entry;
    }
    return nullptr;
  };
  const auto* vag = find("Carly for VAG");
  ASSERT_NE(vag, nullptr);
  EXPECT_EQ(vag->uds_formulas, 90u);
  EXPECT_EQ(vag->kwp_formulas, 137u);
  const auto* mercedes = find("Carly for Mercedes");
  ASSERT_NE(mercedes, nullptr);
  EXPECT_EQ(mercedes->uds_formulas, 1624u);
  EXPECT_EQ(mercedes->kwp_formulas, 468u);
  const auto* toyota = find("Carly for Toyota");
  ASSERT_NE(toyota, nullptr);
  EXPECT_EQ(toyota->kwp_formulas, 7u);
}

TEST(Corpus, AnalyzerRecoversGroundTruthCounts) {
  // End-to-end Alg. 1 over a subset of the corpus (full sweep is the
  // Table 12 bench).
  const auto corpus = build_corpus();
  std::size_t checked = 0;
  for (const auto& entry : corpus) {
    if (entry.app.name != "Carly for VAG" &&
        entry.app.name != "ChevroSys Scan Free" &&
        entry.app.name != "Kiwi OBD" &&
        entry.app.name.rfind("DTC Reader", 0) != 0 &&
        entry.app.name.rfind("ObfuscatedScanner", 0) != 0) {
      continue;
    }
    const auto report = analyze_app(entry.app);
    std::size_t uds = 0, kwp = 0, obd = 0;
    for (const auto& formula : report.formulas) {
      switch (formula.protocol) {
        case ProtocolClass::kUds: ++uds; break;
        case ProtocolClass::kKwp2000: ++kwp; break;
        case ProtocolClass::kObd2: ++obd; break;
        default: break;
      }
    }
    if (entry.extraction_resistant) {
      EXPECT_EQ(report.formulas.size(), 0u) << entry.app.name;
      EXPECT_GT(report.taint_breaks, 0u) << entry.app.name;
    } else {
      EXPECT_EQ(uds, entry.uds_formulas) << entry.app.name;
      EXPECT_EQ(kwp, entry.kwp_formulas) << entry.app.name;
      EXPECT_EQ(obd, entry.obd_formulas) << entry.app.name;
    }
    ++checked;
  }
  EXPECT_GE(checked, 5u);
}

TEST(Ir, PrettyPrinterCoversAllKinds) {
  const auto app = fig9_example();
  for (const auto& stmt : app.statements) {
    EXPECT_FALSE(to_string(stmt).empty());
  }
}

}  // namespace
}  // namespace dpr::appanalysis
