#include <gtest/gtest.h>

#include <sstream>
#include <utility>
#include <vector>

#include "can/bus.hpp"
#include "can/sniffer.hpp"
#include "can/trace.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace dpr::can {
namespace {

TEST(CanFrame, StoresIdAndData) {
  CanFrame frame(0x7E0, {0x02, 0x01, 0x0C});
  EXPECT_EQ(frame.id().value, 0x7E0u);
  EXPECT_FALSE(frame.id().extended);
  EXPECT_EQ(frame.dlc(), 3);
  EXPECT_EQ(frame.byte(1), 0x01);
}

TEST(CanFrame, RejectsOversizedPayload) {
  const util::Bytes nine(9, 0);
  EXPECT_THROW(CanFrame(CanId{0x100, false}, nine), std::invalid_argument);
}

TEST(CanFrame, RejectsOutOfRangeStandardId) {
  const util::Bytes data{0x00};
  EXPECT_THROW(CanFrame(CanId{0x800, false}, data), std::invalid_argument);
}

TEST(CanFrame, AcceptsExtendedId) {
  const util::Bytes data{0x00};
  const CanFrame frame(CanId{0x18DAF110, true}, data);
  EXPECT_TRUE(frame.id().extended);
}

TEST(CanFrame, PadToEight) {
  CanFrame frame(0x123, {0xAA});
  frame.pad_to_8(0x55);
  EXPECT_EQ(frame.dlc(), 8);
  EXPECT_EQ(frame.byte(0), 0xAA);
  EXPECT_EQ(frame.byte(7), 0x55);
}

TEST(CanBus, DeliversToAllListeners) {
  util::SimClock clock;
  CanBus bus(clock);
  int count_a = 0, count_b = 0;
  bus.attach([&](const CanFrame&, util::SimTime) { ++count_a; });
  bus.attach([&](const CanFrame&, util::SimTime) { ++count_b; });
  bus.send(CanFrame(0x100, {0x01}));
  bus.deliver_pending();
  EXPECT_EQ(count_a, 1);
  EXPECT_EQ(count_b, 1);
}

TEST(CanBus, ArbitrationLowestIdWins) {
  util::SimClock clock;
  CanBus bus(clock);
  std::vector<std::uint32_t> order;
  bus.attach([&](const CanFrame& f, util::SimTime) {
    order.push_back(f.id().value);
  });
  bus.send(CanFrame(0x700, {0x01}));
  bus.send(CanFrame(0x100, {0x02}));
  bus.send(CanFrame(0x400, {0x03}));
  bus.deliver_pending();
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0x100, 0x400, 0x700}));
}

TEST(CanBus, FifoAmongEqualIds) {
  util::SimClock clock;
  CanBus bus(clock);
  std::vector<std::uint8_t> order;
  bus.attach([&](const CanFrame& f, util::SimTime) {
    order.push_back(f.byte(0));
  });
  bus.send(CanFrame(0x100, {0x01}));
  bus.send(CanFrame(0x100, {0x02}));
  bus.deliver_pending();
  EXPECT_EQ(order, (std::vector<std::uint8_t>{0x01, 0x02}));
}

TEST(CanBus, ClockAdvancesByWireTime) {
  util::SimClock clock;
  CanBus bus(clock, 500'000);
  bus.send(CanFrame(0x100, {0, 0, 0, 0, 0, 0, 0, 0}));
  bus.deliver_pending();
  // 8-byte frame: (47 + 64) * 1.19 bits at 500 kbit/s ~ 264 us.
  EXPECT_NEAR(static_cast<double>(clock.now()), 264.0, 6.0);
}

TEST(CanBus, ListenerMayRespondDuringDelivery) {
  util::SimClock clock;
  CanBus bus(clock);
  std::vector<std::uint32_t> seen;
  bus.attach([&](const CanFrame& f, util::SimTime) {
    seen.push_back(f.id().value);
    if (f.id().value == 0x7E0) bus.send(CanFrame(0x7E8, {0x41}));
  });
  bus.send(CanFrame(0x7E0, {0x01}));
  bus.deliver_pending();
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{0x7E0, 0x7E8}));
}

// --- Id-filtered dispatch -------------------------------------------------

TEST(IdFilter, MatchSemantics) {
  EXPECT_TRUE(IdFilter::all().match_all());
  EXPECT_TRUE(IdFilter::all().matches(0x0));
  EXPECT_TRUE(IdFilter::all().matches(0x1FFFFFFF));
  const auto exact = IdFilter::exact(0x7E8);
  EXPECT_FALSE(exact.match_all());
  EXPECT_TRUE(exact.matches(0x7E8));
  EXPECT_FALSE(exact.matches(0x7E7));
  EXPECT_FALSE(exact.matches(0x7E9));
  const auto range = IdFilter::range(0x700, 0x10);
  EXPECT_TRUE(range.matches(0x700));
  EXPECT_TRUE(range.matches(0x70F));
  EXPECT_FALSE(range.matches(0x710));
  EXPECT_FALSE(range.matches(0x6FF));  // id - base wraps, stays >= span
}

TEST(CanBus, FilteredListenersSeeOnlyMatchingIds) {
  util::SimClock clock;
  CanBus bus(clock);
  int exact_hits = 0, range_hits = 0, all_hits = 0;
  bus.attach([&](const CanFrame&, util::SimTime) { ++exact_hits; },
             IdFilter::exact(0x7E8));
  bus.attach([&](const CanFrame&, util::SimTime) { ++range_hits; },
             IdFilter::range(0x700, 0x10));
  bus.attach([&](const CanFrame&, util::SimTime) { ++all_hits; });
  bus.send(CanFrame(0x7E8, {0x01}));
  bus.send(CanFrame(0x705, {0x02}));
  bus.send(CanFrame(0x100, {0x03}));
  bus.deliver_pending();
  EXPECT_EQ(exact_hits, 1);
  EXPECT_EQ(range_hits, 1);
  EXPECT_EQ(all_hits, 3);
}

TEST(CanBus, ExtendedIdsReachWideFiltersAndMatchAll) {
  // Filters whose range reaches past the 11-bit bucket table live on the
  // wide_ scan path; extended-id frames must hit them and match-all
  // listeners, and must never leak into narrow standard-id filters.
  util::SimClock clock;
  CanBus bus(clock);
  int wide_hits = 0, narrow_hits = 0, all_hits = 0, other_wide = 0;
  bus.attach([&](const CanFrame&, util::SimTime) { ++wide_hits; },
             IdFilter::exact(CanId{0x18DAF110, true}));
  bus.attach([&](const CanFrame&, util::SimTime) { ++narrow_hits; },
             IdFilter::exact(0x7E0));
  bus.attach([&](const CanFrame&, util::SimTime) { ++all_hits; });
  bus.attach([&](const CanFrame&, util::SimTime) { ++other_wide; },
             IdFilter::range(0x18DB0000, 0x100));
  const util::Bytes ext{0x01};
  bus.send(CanFrame(CanId{0x18DAF110, true}, ext));
  bus.deliver_pending();
  EXPECT_EQ(wide_hits, 1);
  EXPECT_EQ(narrow_hits, 0);
  EXPECT_EQ(all_hits, 1);
  EXPECT_EQ(other_wide, 0);  // wide path still honours the filter
}

TEST(CanBus, StraddlingFilterMatchesBothSidesOfTheBucketBoundary) {
  util::SimClock clock;
  CanBus bus(clock);
  int hits = 0;
  bus.attach([&](const CanFrame&, util::SimTime) { ++hits; },
             IdFilter::range(0x7FE, 0x10));  // crosses 0x800
  const util::Bytes one{0x01}, two{0x02}, three{0x03};
  bus.send(CanFrame(0x7FF, {0x01}));
  bus.send(CanFrame(CanId{0x805, true}, two));
  bus.send(CanFrame(CanId{0x80E, true}, three));  // past the range
  bus.deliver_pending();
  EXPECT_EQ(hits, 2);
}

TEST(CanBus, FilteredAndMatchAllListenersFireInAttachOrder) {
  // Delivery order among the listeners a frame reaches is attach order,
  // regardless of which index structure (bucket, wide, match-all) each
  // listener lives in — exactly like the pre-filter full fan-out.
  util::SimClock clock;
  CanBus bus(clock);
  std::vector<int> order;
  bus.attach([&](const CanFrame&, util::SimTime) { order.push_back(0); },
             IdFilter::exact(0x123));
  bus.attach([&](const CanFrame&, util::SimTime) { order.push_back(1); });
  bus.attach([&](const CanFrame&, util::SimTime) { order.push_back(2); },
             IdFilter::range(0x100, 0x100));
  bus.attach([&](const CanFrame&, util::SimTime) { order.push_back(3); });
  bus.attach([&](const CanFrame&, util::SimTime) { order.push_back(4); },
             IdFilter::exact(0x123));
  bus.send(CanFrame(0x123, {0x01}));
  bus.deliver_pending();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// --- Duplicate-budget carry-over (satellite 1) ----------------------------

TEST(CanBus, DuplicateSecondCopyNeverOvershootsTheBudget) {
  // Regression: a duplicated frame used to deliver both copies even when
  // the deliver_some budget had room for only one, so callers asking for
  // "at most 1" got 2. The second copy now carries over to the next call.
  util::FaultPlan plan;
  plan.duplicate_rate = 1.0;
  util::SimClock clock;
  CanBus bus(clock);
  std::vector<std::pair<util::SimTime, CanFrame>> seen;
  bus.attach([&](const CanFrame& f, util::SimTime t) {
    seen.emplace_back(t, f);
  });
  bus.set_faults(plan, util::CounterRng(3, 0));
  bus.send(CanFrame(0x100, {0xAB}));
  EXPECT_EQ(bus.deliver_some(1), 1u);
  EXPECT_EQ(seen.size(), 1u);
  EXPECT_FALSE(bus.idle());  // the carried copy still owes delivery
  EXPECT_EQ(bus.deliver_some(1), 1u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_TRUE(bus.idle());
  EXPECT_EQ(seen[0].second, seen[1].second);
  EXPECT_LT(seen[0].first, seen[1].first);
}

TEST(CanBus, DuplicateCarryOverKeepsAggregateSequenceIdentical) {
  // Draining one frame at a time must produce the same wire sequence
  // (frames and timestamps) as a single deliver_pending drain.
  util::FaultPlan plan;
  plan.duplicate_rate = 1.0;
  const auto run = [&](bool one_at_a_time) {
    util::SimClock clock;
    CanBus bus(clock);
    std::vector<std::pair<util::SimTime, CanFrame>> seen;
    bus.attach([&](const CanFrame& f, util::SimTime t) {
      seen.emplace_back(t, f);
    });
    bus.set_faults(plan, util::CounterRng(9, 0));
    for (std::uint32_t i = 0; i < 5; ++i) {
      bus.send(CanFrame(0x100 + i, {static_cast<std::uint8_t>(i)}));
    }
    if (one_at_a_time) {
      while (!bus.idle()) bus.deliver_some(1);
    } else {
      bus.deliver_pending();
    }
    return seen;
  };
  const auto drip = run(true);
  const auto bulk = run(false);
  ASSERT_EQ(drip.size(), bulk.size());
  ASSERT_EQ(drip.size(), 10u);  // every frame delivered twice
  for (std::size_t i = 0; i < drip.size(); ++i) {
    EXPECT_EQ(drip[i].first, bulk[i].first) << "frame " << i;
    EXPECT_EQ(drip[i].second, bulk[i].second) << "frame " << i;
  }
}

// --- Heap vs legacy differential (satellite 3) ----------------------------

struct BusRunResult {
  std::vector<std::pair<util::SimTime, CanFrame>> seen;
  util::SimTime final_time = 0;
  std::size_t frames_delivered = 0;
  std::uint64_t lost_to_sleep = 0;
};

// One randomized bus session, fully determined by `seed`: mixed standard /
// extended ids with deliberate equal-id runs, partial deliver_some windows,
// a mid-run sleep that purges queued frames, a wakeup frame, and a fault
// plan that drops / corrupts / duplicates / jitters. The heap path and the
// legacy min_element path must produce byte-identical wire logs.
BusRunResult run_differential(std::uint64_t seed, bool legacy) {
  util::SimClock clock;
  CanBus bus(clock);
  if (legacy) bus.set_legacy_path(true);
  BusRunResult result;
  bus.attach([&](const CanFrame& f, util::SimTime t) {
    result.seen.emplace_back(t, f);
  });
  util::FaultPlan plan;
  plan.drop_rate = 0.1;
  plan.corrupt_rate = 0.1;
  plan.duplicate_rate = 0.1;
  plan.jitter_rate = 0.1;
  bus.set_faults(plan, util::CounterRng(seed, 1));
  bus.enable_lifecycle(0x100, 0x10);

  util::Rng stimulus(seed);
  const std::uint32_t id_pool[] = {0x100, 0x123, 0x123, 0x123, 0x2A0,
                                   0x7E0, 0x7E8, 0x7FF, 0x18DAF110};
  for (int step = 0; step < 40; ++step) {
    const auto n_sends = static_cast<std::size_t>(stimulus.uniform_int(0, 6));
    for (std::size_t s = 0; s < n_sends; ++s) {
      const std::uint32_t id = id_pool[stimulus.uniform_int(0, 8)];
      util::Bytes data(static_cast<std::size_t>(stimulus.uniform_int(1, 8)));
      for (auto& b : data) {
        b = static_cast<std::uint8_t>(stimulus.uniform_int(0, 255));
      }
      bus.send(CanFrame(can::CanId{id, id >= 0x800}, data));
    }
    const int action = static_cast<int>(stimulus.uniform_int(0, 9));
    if (action < 6) {
      bus.deliver_some(static_cast<std::size_t>(stimulus.uniform_int(1, 8)));
    } else if (action < 8) {
      bus.deliver_pending();
    } else if (action == 8) {
      // Sleep with frames possibly still queued: the next window purges
      // them. A wakeup-range frame then restores service.
      bus.sleep();
      bus.deliver_some(4);
      bus.send(CanFrame(0x105, {0x5A}));
    }
  }
  bus.deliver_pending();
  result.final_time = clock.now();
  result.frames_delivered = bus.frames_delivered();
  result.lost_to_sleep = bus.frames_lost_to_sleep();
  return result;
}

TEST(CanBus, HeapArbitrationMatchesLegacyScanByteForByte) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto fast = run_differential(seed, false);
    const auto slow = run_differential(seed, true);
    ASSERT_EQ(fast.seen.size(), slow.seen.size()) << "seed " << seed;
    for (std::size_t i = 0; i < fast.seen.size(); ++i) {
      ASSERT_EQ(fast.seen[i].first, slow.seen[i].first)
          << "seed " << seed << " frame " << i;
      ASSERT_EQ(fast.seen[i].second, slow.seen[i].second)
          << "seed " << seed << " frame " << i;
    }
    EXPECT_EQ(fast.final_time, slow.final_time) << "seed " << seed;
    EXPECT_EQ(fast.frames_delivered, slow.frames_delivered)
        << "seed " << seed;
    EXPECT_EQ(fast.lost_to_sleep, slow.lost_to_sleep) << "seed " << seed;
  }
}

TEST(CanBus, LegacyModeCanBeEnteredMidStream) {
  // Toggling legacy with frames queued re-sorts/re-heaps correctly in
  // both directions; the delivered order stays the arbitration order.
  util::SimClock clock;
  CanBus bus(clock);
  std::vector<std::uint32_t> order;
  bus.attach([&](const CanFrame& f, util::SimTime) {
    order.push_back(f.id().value);
  });
  bus.send(CanFrame(0x500, {0x01}));
  bus.send(CanFrame(0x200, {0x02}));
  bus.set_legacy_path(true);
  bus.send(CanFrame(0x100, {0x03}));
  bus.deliver_some(1);
  bus.set_legacy_path(false);  // heap rebuilt from the flat remainder
  bus.send(CanFrame(0x050, {0x04}));
  bus.deliver_pending();
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0x100, 0x050, 0x200, 0x500}));
}

TEST(Sniffer, RecordsWithDeviceTimestamps) {
  util::SimClock clock;
  CanBus bus(clock);
  Sniffer sniffer(bus, util::DeviceClock(1000, 0.0));
  bus.send(CanFrame(0x100, {0x01}));
  bus.deliver_pending();
  ASSERT_EQ(sniffer.size(), 1u);
  EXPECT_EQ(sniffer.capture()[0].timestamp, clock.now() + 1000);
}

TEST(Sniffer, PausedSnifferDropsFrames) {
  util::SimClock clock;
  CanBus bus(clock);
  Sniffer sniffer(bus);
  sniffer.set_recording(false);
  bus.send(CanFrame(0x100, {0x01}));
  bus.deliver_pending();
  EXPECT_EQ(sniffer.size(), 0u);
}

TEST(Trace, RoundTripsThroughText) {
  std::vector<TimestampedFrame> capture{
      {12345, CanFrame(0x7E0, {0x02, 0x01, 0x0C})},
      {67890, CanFrame(0x7E8, {0x04, 0x41, 0x0C, 0x1A, 0xF8})},
  };
  const std::string text = trace_to_string(capture);
  const auto parsed = trace_from_string(text);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].timestamp, 12345);
  EXPECT_EQ(parsed[0].frame, capture[0].frame);
  EXPECT_EQ(parsed[1].frame, capture[1].frame);
}

TEST(Trace, SkipsCommentsAndRejectsGarbage) {
  const auto parsed = trace_from_string("# comment\n100 7E0 1 2F\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].frame.byte(0), 0x2F);
  std::istringstream bad("100 7E0 9 00\n");
  EXPECT_THROW(read_trace(bad), std::runtime_error);
}

}  // namespace
}  // namespace dpr::can
