#include <gtest/gtest.h>

#include <sstream>

#include "can/bus.hpp"
#include "can/sniffer.hpp"
#include "can/trace.hpp"

namespace dpr::can {
namespace {

TEST(CanFrame, StoresIdAndData) {
  CanFrame frame(0x7E0, {0x02, 0x01, 0x0C});
  EXPECT_EQ(frame.id().value, 0x7E0u);
  EXPECT_FALSE(frame.id().extended);
  EXPECT_EQ(frame.dlc(), 3);
  EXPECT_EQ(frame.byte(1), 0x01);
}

TEST(CanFrame, RejectsOversizedPayload) {
  const util::Bytes nine(9, 0);
  EXPECT_THROW(CanFrame(CanId{0x100, false}, nine), std::invalid_argument);
}

TEST(CanFrame, RejectsOutOfRangeStandardId) {
  const util::Bytes data{0x00};
  EXPECT_THROW(CanFrame(CanId{0x800, false}, data), std::invalid_argument);
}

TEST(CanFrame, AcceptsExtendedId) {
  const util::Bytes data{0x00};
  const CanFrame frame(CanId{0x18DAF110, true}, data);
  EXPECT_TRUE(frame.id().extended);
}

TEST(CanFrame, PadToEight) {
  CanFrame frame(0x123, {0xAA});
  frame.pad_to_8(0x55);
  EXPECT_EQ(frame.dlc(), 8);
  EXPECT_EQ(frame.byte(0), 0xAA);
  EXPECT_EQ(frame.byte(7), 0x55);
}

TEST(CanBus, DeliversToAllListeners) {
  util::SimClock clock;
  CanBus bus(clock);
  int count_a = 0, count_b = 0;
  bus.attach([&](const CanFrame&, util::SimTime) { ++count_a; });
  bus.attach([&](const CanFrame&, util::SimTime) { ++count_b; });
  bus.send(CanFrame(0x100, {0x01}));
  bus.deliver_pending();
  EXPECT_EQ(count_a, 1);
  EXPECT_EQ(count_b, 1);
}

TEST(CanBus, ArbitrationLowestIdWins) {
  util::SimClock clock;
  CanBus bus(clock);
  std::vector<std::uint32_t> order;
  bus.attach([&](const CanFrame& f, util::SimTime) {
    order.push_back(f.id().value);
  });
  bus.send(CanFrame(0x700, {0x01}));
  bus.send(CanFrame(0x100, {0x02}));
  bus.send(CanFrame(0x400, {0x03}));
  bus.deliver_pending();
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0x100, 0x400, 0x700}));
}

TEST(CanBus, FifoAmongEqualIds) {
  util::SimClock clock;
  CanBus bus(clock);
  std::vector<std::uint8_t> order;
  bus.attach([&](const CanFrame& f, util::SimTime) {
    order.push_back(f.byte(0));
  });
  bus.send(CanFrame(0x100, {0x01}));
  bus.send(CanFrame(0x100, {0x02}));
  bus.deliver_pending();
  EXPECT_EQ(order, (std::vector<std::uint8_t>{0x01, 0x02}));
}

TEST(CanBus, ClockAdvancesByWireTime) {
  util::SimClock clock;
  CanBus bus(clock, 500'000);
  bus.send(CanFrame(0x100, {0, 0, 0, 0, 0, 0, 0, 0}));
  bus.deliver_pending();
  // 8-byte frame: (47 + 64) * 1.19 bits at 500 kbit/s ~ 264 us.
  EXPECT_NEAR(static_cast<double>(clock.now()), 264.0, 6.0);
}

TEST(CanBus, ListenerMayRespondDuringDelivery) {
  util::SimClock clock;
  CanBus bus(clock);
  std::vector<std::uint32_t> seen;
  bus.attach([&](const CanFrame& f, util::SimTime) {
    seen.push_back(f.id().value);
    if (f.id().value == 0x7E0) bus.send(CanFrame(0x7E8, {0x41}));
  });
  bus.send(CanFrame(0x7E0, {0x01}));
  bus.deliver_pending();
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{0x7E0, 0x7E8}));
}

TEST(Sniffer, RecordsWithDeviceTimestamps) {
  util::SimClock clock;
  CanBus bus(clock);
  Sniffer sniffer(bus, util::DeviceClock(1000, 0.0));
  bus.send(CanFrame(0x100, {0x01}));
  bus.deliver_pending();
  ASSERT_EQ(sniffer.size(), 1u);
  EXPECT_EQ(sniffer.capture()[0].timestamp, clock.now() + 1000);
}

TEST(Sniffer, PausedSnifferDropsFrames) {
  util::SimClock clock;
  CanBus bus(clock);
  Sniffer sniffer(bus);
  sniffer.set_recording(false);
  bus.send(CanFrame(0x100, {0x01}));
  bus.deliver_pending();
  EXPECT_EQ(sniffer.size(), 0u);
}

TEST(Trace, RoundTripsThroughText) {
  std::vector<TimestampedFrame> capture{
      {12345, CanFrame(0x7E0, {0x02, 0x01, 0x0C})},
      {67890, CanFrame(0x7E8, {0x04, 0x41, 0x0C, 0x1A, 0xF8})},
  };
  const std::string text = trace_to_string(capture);
  const auto parsed = trace_from_string(text);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].timestamp, 12345);
  EXPECT_EQ(parsed[0].frame, capture[0].frame);
  EXPECT_EQ(parsed[1].frame, capture[1].frame);
}

TEST(Trace, SkipsCommentsAndRejectsGarbage) {
  const auto parsed = trace_from_string("# comment\n100 7E0 1 2F\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].frame.byte(0), 0x2F);
  std::istringstream bad("100 7E0 9 00\n");
  EXPECT_THROW(read_trace(bad), std::runtime_error);
}

}  // namespace
}  // namespace dpr::can
