// Checkpoint-store durability, schema migration and self-healing
// (ISSUE 9): golden v2/v3/v4 containers committed as fixtures must
// migrate to a bit-identical resumed report signature; torn, corrupt,
// key-mismatched and future-format files must be quarantined with a
// logged reason (and the campaign re-runs the phase instead of failing);
// the MANIFEST must account for every mutation of the directory.
//
// This binary has a custom main: `checkpoint_test --make-fixtures <dir>`
// regenerates the golden files under tests/fixtures/checkpoints instead
// of running tests (used once per payload-schema bump, never in CI).

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/fleet.hpp"
#include "util/checkpoint.hpp"
#include "vehicle/catalog.hpp"

namespace dpr {

namespace fs = std::filesystem;

/// Same small-but-real profile the resilience suite uses; the committed
/// fixtures embed this option set's digests, so changing it requires
/// regenerating them (--make-fixtures).
core::CampaignOptions fixture_options() {
  core::CampaignOptions options;
  options.live_window = 4 * util::kSecond;
  options.gp.population = 48;
  options.gp.max_generations = 8;
  return options;
}

/// Phase index the fixtures checkpoint after (2 = ocr_extract), so a
/// resume still has real work (align..score) left to redo.
constexpr std::uint32_t kFixturePhase = 2;

struct FixtureKeys {
  std::uint64_t car = 0;      ///< spec digest (v3+ key space)
  std::uint64_t seed = 0;
  std::uint64_t current = 0;  ///< today's options digest
  std::uint64_t legacy = 0;   ///< v2/v3-era digest (pre-NM formula)
  std::uint32_t catalog = 0;  ///< u32 CarId (v2 key space)
};

FixtureKeys fixture_keys() {
  const core::Campaign probe(vehicle::CarId::kA, fixture_options());
  FixtureKeys keys;
  keys.car = probe.checkpoint_car_key();
  keys.seed = fixture_options().seed;
  keys.current = probe.checkpoint_options_digest();
  keys.legacy = probe.checkpoint_options_digest(/*legacy=*/true);
  keys.catalog = static_cast<std::uint32_t>(vehicle::CarId::kA);
  return keys;
}

/// Wrap `payload` in a pre-v5 monolithic container exactly as those
/// builds wrote it: magic, version, key triple (u32 car in v2), phase,
/// length-prefixed payload, trailing FNV.
util::Bytes legacy_container(std::uint32_t version, const FixtureKeys& keys,
                             std::uint64_t digest,
                             const util::Bytes& payload) {
  util::BinaryWriter w;
  w.u32(core::kCheckpointMagic);
  w.u32(version);
  if (version == 2) {
    w.u32(keys.catalog);
  } else {
    w.u64(keys.car);
  }
  w.u64(keys.seed);
  w.u64(digest);
  w.u32(kFixturePhase);
  w.bytes(payload);
  w.u64(util::fnv1a64(w.data()));
  return w.take();
}

/// Regenerate the golden fixtures: run the fixture campaign to the
/// fixture phase, serialize its state in each historical schema and wrap
/// each in the container its era's build would have written.
int make_fixtures(const std::string& dir) {
  fs::create_directories(dir);
  auto stopped = fixture_options();
  stopped.stop_after_phase = static_cast<int>(kFixturePhase);
  core::Campaign campaign(vehicle::CarId::kA, stopped);
  campaign.run();

  const FixtureKeys keys = fixture_keys();
  const core::CheckpointStore namer(dir);
  struct Golden {
    std::uint32_t version;
    std::string path;
    std::uint64_t digest;
  };
  const Golden goldens[] = {
      {2, namer.legacy_path_for(keys.catalog, keys.seed, keys.legacy),
       keys.legacy},
      {3, namer.path_for(keys.car, keys.seed, keys.legacy), keys.legacy},
      {4, namer.path_for(keys.car, keys.seed, keys.current), keys.current},
  };
  for (const auto& golden : goldens) {
    const auto payload = campaign.serialize_state_versioned(golden.version);
    const auto container =
        legacy_container(golden.version, keys, golden.digest, payload);
    const auto io = util::write_file_atomic(golden.path, container);
    if (!io) {
      std::fprintf(stderr, "write %s: %s\n", golden.path.c_str(),
                   io.message().c_str());
      return 1;
    }
    std::printf("v%u fixture: %s (%zu bytes)\n", golden.version,
                golden.path.c_str(), container.size());
  }
  return 0;
}

namespace {

#ifndef DPR_FIXTURE_DIR
#define DPR_FIXTURE_DIR "tests/fixtures/checkpoints"
#endif

const std::string& fresh_signature() {
  static const std::string signature = [] {
    core::Campaign campaign(vehicle::CarId::kA, fixture_options());
    campaign.run();
    return core::report_signature(campaign.report());
  }();
  return signature;
}

/// Per-test scratch checkpoint directory.
class StoreDir : public ::testing::Test {
 protected:
  StoreDir()
      : dir_((fs::temp_directory_path() /
              ("dpr_ckpt_mig_" + std::to_string(::getpid()) + "_" +
               ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                 .string()) {
    fs::remove_all(dir_);
  }
  ~StoreDir() override { fs::remove_all(dir_); }

  /// Copy a committed fixture into the scratch dir, name preserved.
  std::string install_fixture(const std::string& fixture_path) {
    fs::create_directories(dir_);
    const std::string target =
        dir_ + "/" + fs::path(fixture_path).filename().string();
    fs::copy_file(fixture_path, target);
    return target;
  }

  std::string dir_;
};

struct FixtureSet {
  FixtureKeys keys = fixture_keys();
  std::string v2, v3, v4;
  FixtureSet() {
    const core::CheckpointStore namer(DPR_FIXTURE_DIR);
    v2 = namer.legacy_path_for(keys.catalog, keys.seed, keys.legacy);
    v3 = namer.path_for(keys.car, keys.seed, keys.legacy);
    v4 = namer.path_for(keys.car, keys.seed, keys.current);
  }
};

const FixtureSet& fixtures() {
  static const FixtureSet set;
  return set;
}

TEST(Fixtures, GoldenFilesAreCommitted) {
  EXPECT_TRUE(fs::exists(fixtures().v2)) << fixtures().v2;
  EXPECT_TRUE(fs::exists(fixtures().v3)) << fixtures().v3;
  EXPECT_TRUE(fs::exists(fixtures().v4)) << fixtures().v4;
}

// --- Migration: golden old-format files resume bit-identically ------------

TEST_F(StoreDir, GoldenFixturesResumeToIdenticalSignature) {
  struct Case {
    const char* name;
    const std::string& path;
  };
  const Case cases[] = {{"v2", fixtures().v2},
                        {"v3", fixtures().v3},
                        {"v4", fixtures().v4}};
  for (const auto& test_case : cases) {
    fs::remove_all(dir_);
    install_fixture(test_case.path);

    auto options = fixture_options();
    options.checkpoint_dir = dir_;
    options.resume = true;
    core::Campaign resumed(vehicle::CarId::kA, options);
    resumed.run();
    EXPECT_EQ(core::report_signature(resumed.report()), fresh_signature())
        << test_case.name;
    EXPECT_EQ(resumed.report().ckpt_salvaged, 1u) << test_case.name;
    EXPECT_EQ(resumed.report().ckpt_quarantined, 0u) << test_case.name;

    const core::CheckpointStore store(dir_);
    EXPECT_EQ(store.manifest().migrations, 1u) << test_case.name;
    // Completed end to end: the migrated checkpoint was then retired.
    const auto gone =
        store.load(fixtures().keys.car, fixtures().keys.seed,
                   fixtures().keys.current);
    EXPECT_FALSE(gone.has_value()) << test_case.name;
    EXPECT_EQ(gone.error, core::CheckpointStore::LoadError::kMissing)
        << test_case.name;
  }
}

TEST_F(StoreDir, StoreRewritesLegacyContainerAsV5UnderCurrentKey) {
  const auto& keys = fixtures().keys;
  const std::string old_path = install_fixture(fixtures().v3);

  const core::CheckpointStore store(dir_);
  core::CheckpointStore::LegacyKey legacy;
  legacy.options_digest = keys.legacy;
  legacy.catalog_car = keys.catalog;

  const auto first = store.load(keys.car, keys.seed, keys.current, &legacy);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->migrated);
  EXPECT_EQ(first->payload_schema, 3u);
  EXPECT_EQ(first->phase, kFixturePhase);

  // The legacy-named file is retired; the v5 rewrite (payload bytes and
  // schema preserved verbatim) answers under the current key without
  // needing the legacy key at all.
  EXPECT_FALSE(fs::exists(old_path));
  const auto second = store.load(keys.car, keys.seed, keys.current);
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->migrated);
  EXPECT_EQ(second->payload_schema, 3u);
  EXPECT_EQ(second->payload, first->payload);
  EXPECT_EQ(store.manifest().migrations, 1u);
  EXPECT_EQ(store.manifest().saves, 1u);
}

TEST_F(StoreDir, V2CatalogKeyIsOnlySearchedWithLegacyKey) {
  const auto& keys = fixtures().keys;
  install_fixture(fixtures().v2);
  const core::CheckpointStore store(dir_);

  // Without the legacy key the v2 file is invisible: a clean miss.
  const auto blind = store.load(keys.car, keys.seed, keys.current);
  EXPECT_FALSE(blind.has_value());
  EXPECT_EQ(blind.error, core::CheckpointStore::LoadError::kMissing);

  core::CheckpointStore::LegacyKey legacy;
  legacy.options_digest = keys.legacy;
  legacy.catalog_car = keys.catalog;
  const auto found = store.load(keys.car, keys.seed, keys.current, &legacy);
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(found->migrated);
  EXPECT_EQ(found->payload_schema, 2u);
}

// --- Self-healing: untrustworthy files are quarantined, never fatal -------

TEST_F(StoreDir, TruncatedCheckpointQuarantinedAndPhaseRerun) {
  const std::string path = install_fixture(fixtures().v4);
  const auto full = util::read_file(path);
  ASSERT_TRUE(full.has_value());
  {
    // Tear the file the way a crashed non-durable writer would.
    std::ofstream torn(path, std::ios::binary | std::ios::trunc);
    torn.write(reinterpret_cast<const char*>(full->data()),
               static_cast<std::streamsize>(full->size() / 2));
  }

  auto options = fixture_options();
  options.checkpoint_dir = dir_;
  options.resume = true;
  core::Campaign resumed(vehicle::CarId::kA, options);
  resumed.run();
  // The bad file cost nothing but a fresh start: same signature, one
  // quarantined checkpoint, reason on record.
  EXPECT_EQ(core::report_signature(resumed.report()), fresh_signature());
  EXPECT_EQ(resumed.report().ckpt_quarantined, 1u);
  EXPECT_EQ(resumed.report().ckpt_salvaged, 0u);

  const core::CheckpointStore store(dir_);
  EXPECT_EQ(store.manifest().quarantines, 1u);
  const auto log = util::read_file(store.reasons_log_path());
  ASSERT_TRUE(log.has_value());
  const std::string text(log->begin(), log->end());
  EXPECT_NE(text.find(fs::path(path).filename().string()), std::string::npos);
  EXPECT_NE(text.find("torn"), std::string::npos);
}

TEST_F(StoreDir, CorruptedByteIsTornNotCrash) {
  const auto& keys = fixtures().keys;
  const std::string path = install_fixture(fixtures().v4);
  auto data = *util::read_file(path);
  data[data.size() / 2] ^= 0x40;
  ASSERT_TRUE(util::write_file_atomic(path, data));

  const core::CheckpointStore store(dir_);
  const auto result = store.load(keys.car, keys.seed, keys.current);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(result.error, core::CheckpointStore::LoadError::kTorn);
  EXPECT_TRUE(result.quarantined);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(store.quarantine_dir() + "/" +
                         fs::path(path).filename().string()));
}

TEST_F(StoreDir, FutureContainerVersionRejectedWithReason) {
  const auto& keys = fixtures().keys;
  const core::CheckpointStore store(dir_);
  util::BinaryWriter w;
  w.u32(core::kCheckpointMagic);
  w.u32(core::kCheckpointVersion + 1);
  w.u64(util::fnv1a64(w.data()));
  ASSERT_TRUE(util::write_file_atomic(
      store.path_for(keys.car, keys.seed, keys.current), w.data()));

  const auto result = store.load(keys.car, keys.seed, keys.current);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(result.error, core::CheckpointStore::LoadError::kFutureVersion);
  EXPECT_TRUE(result.quarantined);
  EXPECT_NE(result.detail.find("newer build"), std::string::npos);
}

TEST_F(StoreDir, UnknownSectionRejectedByName) {
  const auto& keys = fixtures().keys;
  const core::CheckpointStore store(dir_);
  util::BinaryWriter w;
  w.u32(core::kCheckpointMagic);
  w.u32(core::kCheckpointVersion);
  w.u32(1);            // one section, and it's one this build lacks
  w.u32(0x00585858);   // "XXX"
  w.u32(1);
  w.bytes(util::Bytes{0xAB});
  w.u64(util::fnv1a64(w.data()));
  ASSERT_TRUE(util::write_file_atomic(
      store.path_for(keys.car, keys.seed, keys.current), w.data()));

  const auto result = store.load(keys.car, keys.seed, keys.current);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(result.error, core::CheckpointStore::LoadError::kUnknownSection);
  EXPECT_TRUE(result.quarantined);
  EXPECT_NE(result.detail.find("0x00585858"), std::string::npos);
}

TEST_F(StoreDir, EmbeddedKeyMismatchQuarantined) {
  const auto& keys = fixtures().keys;
  const core::CheckpointStore store(dir_);
  // File named for one digest, content keyed for another: the classic
  // "renamed by hand" corruption.
  const auto content = util::read_file(fixtures().v4);
  ASSERT_TRUE(content.has_value());
  ASSERT_TRUE(util::write_file_atomic(
      store.path_for(keys.car, keys.seed, keys.current ^ 1), *content));

  const auto result = store.load(keys.car, keys.seed, keys.current ^ 1);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(result.error, core::CheckpointStore::LoadError::kKeyMismatch);
  EXPECT_TRUE(result.quarantined);
}

TEST_F(StoreDir, MissingFileIsACleanMissNotAFault) {
  const core::CheckpointStore store(dir_);
  const auto result = store.load(1, 2, 3);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(result.error, core::CheckpointStore::LoadError::kMissing);
  EXPECT_FALSE(result.quarantined);
  EXPECT_STREQ(core::CheckpointStore::load_error_name(result.error),
               "missing");
}

// --- heal(): one sweep quarantines the bad, keeps the good ----------------

TEST_F(StoreDir, HealSweepsGarbageDeadTmpsAndCountsLegacy) {
  const auto& keys = fixtures().keys;
  const core::CheckpointStore store(dir_);
  // Healthy v5 file (via a real save), one legacy fixture, one garbage
  // file wearing the .ckpt extension, one temp file of a dead writer.
  const util::Bytes payload{0x01, 0x02, 0x03};
  ASSERT_TRUE(store.save(keys.car, keys.seed, keys.current, 1, payload));
  install_fixture(fixtures().v3);
  const util::Bytes garbage{'n', 'o', 't', ' ', 'a', ' ', 'c', 'k', 'p',
                            't', ' ', 'a', 't', ' ', 'a', 'l', 'l', '!'};
  ASSERT_TRUE(util::write_file_atomic(dir_ + "/dpr-garbage.ckpt", garbage));

  // A guaranteed-dead pid: fork a child that exits immediately.
  const pid_t dead = fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) _exit(0);
  int status = 0;
  ASSERT_EQ(waitpid(dead, &status, 0), dead);
  {
    std::ofstream tmp(dir_ + "/dpr-orphan.ckpt.tmp." + std::to_string(dead));
    tmp << "half-written";
  }

  const auto healed = store.heal();
  EXPECT_EQ(healed.scanned, 3u);
  EXPECT_EQ(healed.healthy, 1u);
  EXPECT_EQ(healed.legacy, 1u);  // left in place: migrates on first load
  EXPECT_EQ(healed.quarantined, 1u);
  EXPECT_EQ(healed.tmp_swept, 1u);
  EXPECT_FALSE(fs::exists(dir_ + "/dpr-garbage.ckpt"));
  EXPECT_TRUE(fs::exists(fs::path(dir_) / fs::path(fixtures().v3).filename()));

  // The directory is now stable: a second sweep finds nothing to do.
  const auto again = store.heal();
  EXPECT_EQ(again.quarantined, 0u);
  EXPECT_EQ(again.tmp_swept, 0u);
}

// --- MANIFEST bookkeeping --------------------------------------------------

TEST_F(StoreDir, ManifestAccountsForEveryMutation) {
  const core::CheckpointStore store(dir_);
  EXPECT_EQ(store.manifest().generation, 0u);  // absent reads as zeros

  const util::Bytes payload{0xAA, 0xBB};
  ASSERT_TRUE(store.save(7, 8, 9, 0, payload));
  ASSERT_TRUE(store.save(7, 8, 9, 1, payload));
  EXPECT_EQ(store.manifest().saves, 2u);
  EXPECT_EQ(store.manifest().generation, 2u);

  store.remove(7, 8, 9);
  EXPECT_EQ(store.manifest().removes, 1u);
  EXPECT_EQ(store.manifest().generation, 3u);
  store.remove(7, 8, 9);  // removing a missing key is not a mutation
  EXPECT_EQ(store.manifest().removes, 1u);

  // A torn manifest reads as zeros and is rebuilt by the next mutation.
  {
    std::ofstream torn(dir_ + "/MANIFEST",
                       std::ios::binary | std::ios::trunc);
    torn << "ga";
  }
  EXPECT_EQ(store.manifest().generation, 0u);
  ASSERT_TRUE(store.save(7, 8, 9, 2, payload));
  EXPECT_EQ(store.manifest().generation, 1u);
  EXPECT_EQ(store.manifest().saves, 1u);
}

// --- Error-reason surface (satellite b) ------------------------------------

TEST_F(StoreDir, SaveSurfacesFailingStageAndErrno) {
  // A store rooted under a regular file cannot create its directory, so
  // the very first step of the atomic write protocol must fail — with a
  // stage name and errno, not a bare false.
  fs::create_directories(dir_);
  const std::string blocker = dir_ + "/not_a_dir";
  { std::ofstream out(blocker); out << "file"; }
  const core::CheckpointStore store(blocker + "/sub");
  const util::Bytes payload{0x00};
  const auto saved = store.save(1, 2, 3, 0, payload);
  EXPECT_FALSE(saved);
  EXPECT_NE(saved.error, 0);
  EXPECT_STRNE(saved.stage, "");
  EXPECT_NE(saved.message().find(saved.stage), std::string::npos);
}

}  // namespace
}  // namespace dpr

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--make-fixtures") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--make-fixtures needs a directory\n");
        return 2;
      }
      return dpr::make_fixtures(argv[i + 1]);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
