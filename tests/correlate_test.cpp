#include <gtest/gtest.h>

#include "correlate/correlate.hpp"
#include "obd/pid.hpp"

namespace dpr::correlate {
namespace {

TEST(BuildDataset, PairsNearestSampleUnderOffset) {
  std::vector<XSample> xs{{1000, {10.0}}, {2000, {20.0}}};
  std::vector<YSample> ys{{1350, 100.0}, {2350, 200.0}, {9999, 42.0}};
  const auto dataset = build_dataset(xs, ys, /*offset=*/300);
  ASSERT_EQ(dataset.points.size(), 2u);
  EXPECT_DOUBLE_EQ(dataset.points[0].y, 100.0);
  EXPECT_DOUBLE_EQ(dataset.points[1].y, 200.0);
  EXPECT_EQ(dataset.n_vars, 1u);
}

TEST(BuildDataset, DropsPairsBeyondMaxGap) {
  std::vector<XSample> xs{{1000, {10.0}}};
  std::vector<YSample> ys{{5'000'000, 100.0}};
  const auto dataset = build_dataset(xs, ys, 0, 800 * util::kMillisecond);
  EXPECT_TRUE(dataset.points.empty());
}

TEST(BuildDataset, TwoVariableOperands) {
  std::vector<XSample> xs{{1000, {1.0, 2.0}}};
  std::vector<YSample> ys{{1000, 3.0}};
  const auto dataset = build_dataset(xs, ys, 0);
  EXPECT_EQ(dataset.n_vars, 2u);
  EXPECT_EQ(dataset.points[0].xs, (std::vector<double>{1.0, 2.0}));
}

TEST(BuildDataset, EmptyInputsYieldEmptyDataset) {
  EXPECT_TRUE(build_dataset({}, {{1, 1.0}}, 0).points.empty());
  EXPECT_TRUE(build_dataset({{1, {1.0}}}, {}, 0).points.empty());
}

TEST(AlignWithObd, RecoversDisplayLatency) {
  // Vehicle-speed responses whose value changes each time; the display
  // repaints a constant 250 ms later.
  const util::SimTime latency = 250 * util::kMillisecond;
  std::vector<frames::DiagMessage> messages;
  std::vector<screenshot::UiSample> samples;
  double value = 40.0;
  for (int i = 0; i < 20; ++i) {
    const util::SimTime t = i * util::kSecond;
    value += 7.0;
    const auto spec = obd::find_pid(0x0D);
    const auto raw = spec->encode(value);
    util::Bytes payload{0x41, 0x0D};
    payload.insert(payload.end(), raw.begin(), raw.end());
    messages.push_back(frames::DiagMessage{t, 0x7E8, payload});
    samples.push_back(screenshot::UiSample{
        t + latency, 0, spec->name, "", spec->decode(raw)});
  }
  const auto result = align_with_obd(messages, samples);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(static_cast<double>(result->offset),
              static_cast<double>(latency), 1000.0);
  EXPECT_GT(result->matched, 10u);
}

TEST(AlignWithObd, NoAnchorsWithoutValueChanges) {
  std::vector<frames::DiagMessage> messages;
  std::vector<screenshot::UiSample> samples;
  for (int i = 0; i < 10; ++i) {
    messages.push_back(frames::DiagMessage{
        i * 1000, 0x7E8, util::from_hex("41 0D 64")});
    samples.push_back(
        screenshot::UiSample{i * 1000 + 100, 0, "Vehicle Speed", "", 100.0});
  }
  EXPECT_EQ(align_with_obd(messages, samples), std::nullopt);
}

TEST(EstimateByChanges, RecoversLatencyFromGenericSeries) {
  const util::SimTime latency = 300 * util::kMillisecond;
  std::vector<XSample> xs;
  std::vector<YSample> ys;
  double raw = 10.0;
  for (int i = 0; i < 30; ++i) {
    const util::SimTime t = i * util::kSecond;
    raw += 3.0;
    xs.push_back(XSample{t, {raw}});
    ys.push_back(YSample{t + latency, raw * 2.0});
  }
  std::vector<std::pair<std::vector<XSample>, std::vector<YSample>>> series;
  series.emplace_back(xs, ys);
  const auto result = estimate_offset_by_changes(series);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(static_cast<double>(result->offset),
              static_cast<double>(latency), 1000.0);
}

TEST(EstimateByChanges, RequiresEnoughAnchors) {
  std::vector<std::pair<std::vector<XSample>, std::vector<YSample>>> series;
  series.emplace_back(std::vector<XSample>{{1, {1.0}}},
                      std::vector<YSample>{{2, 2.0}});
  EXPECT_EQ(estimate_offset_by_changes(series), std::nullopt);
}

TEST(EstimateByChanges, RobustToSpuriousYChanges) {
  const util::SimTime latency = 200 * util::kMillisecond;
  std::vector<XSample> xs;
  std::vector<YSample> ys;
  double raw = 10.0;
  for (int i = 0; i < 40; ++i) {
    const util::SimTime t = i * util::kSecond;
    raw += 2.0;
    xs.push_back(XSample{t, {raw}});
    ys.push_back(YSample{t + latency, raw});
    if (i % 10 == 5) {
      // A corrupted OCR sample creating a fake Y change mid-interval.
      ys.push_back(YSample{t + 700 * util::kMillisecond, raw * 7});
    }
  }
  std::vector<std::pair<std::vector<XSample>, std::vector<YSample>>> series;
  series.emplace_back(xs, ys);
  const auto result = estimate_offset_by_changes(series);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(static_cast<double>(result->offset),
              static_cast<double>(latency), 80'000.0);
}

}  // namespace
}  // namespace dpr::correlate
