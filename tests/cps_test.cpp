#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "can/bus.hpp"
#include "cps/analyzer.hpp"
#include "cps/camera.hpp"
#include "cps/clicker.hpp"
#include "cps/ocr.hpp"
#include "cps/planner.hpp"
#include "cps/script.hpp"
#include "diagtool/tool.hpp"
#include "vehicle/vehicle.hpp"

namespace dpr::cps {
namespace {

TEST(Ocr, PerfectWhenNoiseDisabled) {
  OcrEngine ocr(util::Rng(1), /*noisy=*/false);
  EXPECT_EQ(ocr.read("25.00", 10), "25.00");
  EXPECT_DOUBLE_EQ(ocr.stats().precision(), 1.0);
}

TEST(Ocr, ErrorRateFallsWithFontSize) {
  EXPECT_GT(OcrEngine::char_error_rate(18), OcrEngine::char_error_rate(34));
  EXPECT_GT(OcrEngine::char_error_rate(10), OcrEngine::char_error_rate(18));
}

TEST(Ocr, CalibrationMatchesTable4) {
  // ~70 glyphs per frame: AUTEL (34 px) ~97.6 %, LAUNCH (18 px) ~85 %.
  const double p_autel = OcrEngine::char_error_rate(34);
  const double p_launch = OcrEngine::char_error_rate(18);
  EXPECT_NEAR(std::pow(1.0 - p_autel, 70), 0.976, 0.01);
  EXPECT_NEAR(std::pow(1.0 - p_launch, 70), 0.85, 0.03);
}

TEST(Ocr, EventuallyDropsDecimalPoints) {
  OcrEngine ocr(util::Rng(7));
  bool dropped = false;
  for (int i = 0; i < 30000 && !dropped; ++i) {
    const std::string read = ocr.read("25.00", 12);
    if (read == "2500") dropped = true;
  }
  EXPECT_TRUE(dropped);
  EXPECT_GT(ocr.stats().decimal_drops, 0u);
}

TEST(Ocr, StatsTrackPrecision) {
  OcrEngine ocr(util::Rng(9));
  for (int i = 0; i < 2000; ++i) ocr.read("Engine Speed", 34);
  EXPECT_GT(ocr.stats().precision(), 0.9);
  EXPECT_LT(ocr.stats().precision(), 1.0);
}

TEST(Clicker, TravelTimeIsManhattanOverSpeed) {
  util::SimClock clock;
  RoboticClicker clicker(clock, /*speed=*/1000.0, /*dwell=*/0);
  EXPECT_EQ(clicker.travel_time(300, 400),
            static_cast<util::SimTime>(0.7 * util::kSecond));
}

TEST(Clicker, MoveAndClickAdvancesClockAndLogs) {
  util::SimClock clock;
  RoboticClicker clicker(clock, 1000.0, 100 * util::kMillisecond);
  const auto event = clicker.move_and_click(100, 100);
  EXPECT_EQ(clock.now(), 300 * util::kMillisecond);  // 200 travel + 100 dwell
  EXPECT_EQ(event.x, 100);
  EXPECT_EQ(clicker.log().size(), 1u);
  EXPECT_EQ(clicker.total_travel(), 200 * util::kMillisecond);
}

TEST(Planner, NearestNeighborVisitsAll) {
  const std::vector<Point> points{{0, 0}, {10, 0}, {0, 10}, {10, 10}};
  const auto order = plan_nearest_neighbor({0, 0}, points);
  ASSERT_EQ(order.size(), 4u);
  std::set<std::size_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(Planner, NearestNeighborBeatsRandomOnAverage) {
  // The §3.1 claim: NN saves ~7 % of movement versus random order on a
  // 14-ESV screen.
  util::Rng rng(11);
  double nn_total = 0, random_total = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Point> points;
    for (int i = 0; i < 14; ++i) {
      points.push_back(Point{static_cast<int>(rng.uniform_int(0, 1200)),
                             static_cast<int>(rng.uniform_int(0, 700))});
    }
    const Point start{0, 0};
    nn_total += static_cast<double>(
        tour_length(start, points, plan_nearest_neighbor(start, points)));
    auto random_order = plan_random(points, rng);
    random_total +=
        static_cast<double>(tour_length(start, points, random_order));
  }
  EXPECT_LT(nn_total, random_total * 0.93);
}

TEST(Planner, BruteForceOptimalOnSmallInstances) {
  util::Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Point> points;
    for (int i = 0; i < 7; ++i) {
      points.push_back(Point{static_cast<int>(rng.uniform_int(0, 500)),
                             static_cast<int>(rng.uniform_int(0, 500))});
    }
    const Point start{0, 0};
    const long optimal =
        tour_length(start, points, plan_brute_force(start, points));
    const long nn =
        tour_length(start, points, plan_nearest_neighbor(start, points));
    EXPECT_LE(optimal, nn);
  }
}

TEST(Planner, TwoOptNeverWorseThanInput) {
  util::Rng rng(17);
  std::vector<Point> points;
  for (int i = 0; i < 12; ++i) {
    points.push_back(Point{static_cast<int>(rng.uniform_int(0, 1000)),
                           static_cast<int>(rng.uniform_int(0, 1000))});
  }
  const Point start{0, 0};
  auto initial = plan_random(points, rng);
  const long before = tour_length(start, points, initial);
  const long after =
      tour_length(start, points, refine_two_opt(start, points, initial));
  EXPECT_LE(after, before);
}

TEST(Planner, BruteForceRejectsLargeInstances) {
  std::vector<Point> points(11);
  EXPECT_THROW(plan_brute_force({0, 0}, points), std::invalid_argument);
}

class RigFixture : public ::testing::Test {
 protected:
  RigFixture()
      : bus_(clock_),
        vehicle_(vehicle::CarId::kA, bus_, clock_),
        tool_(diagtool::profile_for(diagtool::ToolKind::kAutel919),
              vehicle_, bus_, clock_),
        camera_(tool_, util::DeviceClock(1000, 0.0),
                tool_.profile().value_font_px),
        ocr_(util::Rng(3), /*noisy=*/false),
        analyzer_(ocr_, util::Rng(4)) {}

  util::SimClock clock_;
  can::CanBus bus_;
  vehicle::Vehicle vehicle_;
  diagtool::DiagnosticTool tool_;
  Camera camera_;
  OcrEngine ocr_;
  UiAnalyzer analyzer_;
};

TEST_F(RigFixture, CameraCapturesWidgetsWithDeviceTimestamp) {
  clock_.advance(5000);
  const auto shot = camera_.capture(clock_.now());
  EXPECT_EQ(shot.timestamp, 6000);
  EXPECT_GT(shot.text_regions.size(), 3u);
}

TEST_F(RigFixture, AnalyzerFindsButtonsByKeyword) {
  const auto shot = camera_.capture(clock_.now());
  EXPECT_TRUE(analyzer_.find_button(shot, "Diagnos").has_value());
  EXPECT_FALSE(analyzer_.find_button(shot, "Nonexistent").has_value());
}

TEST_F(RigFixture, AnalyzerRespectsExcludeList) {
  tool_.click(tool_.screen().widgets[1].bounds.center_x(),
              tool_.screen().widgets[1].bounds.center_y());  // diagnostics
  const auto list_shot = camera_.capture(clock_.now());
  // Enter first ECU to reach the menu with "Read/Clear Trouble Codes".
  const auto point = analyzer_.find_button(list_shot, "Engine");
  ASSERT_TRUE(point.has_value());
  tool_.click(point->x, point->y);
  const auto menu_shot = camera_.capture(clock_.now());
  const auto excluded = analyzer_.find_button(menu_shot, "Trouble",
                                              {"Clear"});
  ASSERT_TRUE(excluded.has_value());  // "Read Trouble Codes" passes
  const auto all_excluded =
      analyzer_.find_button(menu_shot, "Clear Trouble", {"Clear"});
  EXPECT_FALSE(all_excluded.has_value());
}

TEST_F(RigFixture, IconSimilarityMatchingFindsBackArrow) {
  tool_.click(tool_.screen().widgets[1].bounds.center_x(),
              tool_.screen().widgets[1].bounds.center_y());
  const auto shot = camera_.capture(clock_.now());
  EXPECT_TRUE(analyzer_.find_icon(shot, "back_arrow").has_value());
  EXPECT_FALSE(analyzer_.find_icon(shot, "gear_icon").has_value());
}

TEST_F(RigFixture, IconSimilarityScores) {
  EXPECT_GT(analyzer_.icon_similarity("back_arrow", "back_arrow"), 0.85);
  EXPECT_LT(analyzer_.icon_similarity("back_arrow", "gear_icon"), 0.8);
}

TEST_F(RigFixture, ScriptExecutorClicksAndWaits) {
  RoboticClicker clicker(clock_);
  ScriptExecutor executor(clicker, tool_);
  // Click "Local Diagnostics" (widget index 1 on the main menu).
  const auto& widget = tool_.screen().widgets[1];
  const auto script = make_click_script(
      {Point{widget.bounds.center_x(), widget.bounds.center_y()}},
      500 * util::kMillisecond);
  executor.run(script);
  EXPECT_EQ(tool_.mode(), diagtool::DiagnosticTool::Mode::kEcuList);
  ASSERT_EQ(executor.log().size(), 2u);  // click + wait
  EXPECT_GT(executor.log()[0].timestamp, 0);
}

TEST(Script, GeneratorInsertsWaitsAndFinalCapture) {
  const auto script =
      make_click_script({{1, 1}, {2, 2}}, 100, 30 * util::kSecond, "sel");
  ASSERT_EQ(script.size(), 5u);  // 2 x (click+wait) + final wait
  EXPECT_EQ(script[0].kind, ScriptStatement::Kind::kClick);
  EXPECT_EQ(script[4].duration, 30 * util::kSecond);
}

}  // namespace
}  // namespace dpr::cps
