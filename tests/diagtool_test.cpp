#include <gtest/gtest.h>

#include "can/bus.hpp"
#include "can/sniffer.hpp"
#include "diagtool/tool.hpp"
#include "vehicle/vehicle.hpp"

namespace dpr::diagtool {
namespace {

class ToolFixture : public ::testing::Test {
 protected:
  explicit ToolFixture(vehicle::CarId car = vehicle::CarId::kA)
      : bus_(clock_),
        vehicle_(car, bus_, clock_),
        tool_(profile_by_name(vehicle_.spec().tool), vehicle_, bus_,
              clock_),
        sniffer_(bus_) {}

  /// Click the first clickable widget whose text contains `keyword`.
  bool click(const std::string& keyword) {
    for (const auto& widget : tool_.screen().widgets) {
      if ((widget.kind == Widget::Kind::kButton) &&
          widget.text.find(keyword) != std::string::npos) {
        return tool_.click(widget.bounds.center_x(),
                           widget.bounds.center_y());
      }
    }
    return false;
  }

  util::SimClock clock_;
  can::CanBus bus_;
  vehicle::Vehicle vehicle_;
  DiagnosticTool tool_;
  can::Sniffer sniffer_;
};

TEST_F(ToolFixture, StartsAtMainMenu) {
  EXPECT_EQ(tool_.mode(), DiagnosticTool::Mode::kMainMenu);
  EXPECT_NE(tool_.screen().title.find("Skoda"), std::string::npos);
}

TEST_F(ToolFixture, NavigatesToEcuList) {
  ASSERT_TRUE(click("Local Diagnostics"));
  EXPECT_EQ(tool_.mode(), DiagnosticTool::Mode::kEcuList);
  // One button per ECU.
  std::size_t buttons = 0;
  for (const auto& w : tool_.screen().widgets) {
    if (w.kind == Widget::Kind::kButton) ++buttons;
  }
  EXPECT_EQ(buttons, vehicle_.spec().ecus.size());
}

TEST_F(ToolFixture, EcuMenuHasDataStreamAndActiveTest) {
  click("Local Diagnostics");
  click("Engine");
  EXPECT_EQ(tool_.mode(), DiagnosticTool::Mode::kEcuMenu);
  EXPECT_TRUE(click("Read Data Stream"));
  EXPECT_EQ(tool_.mode(), DiagnosticTool::Mode::kDataSelect);
}

TEST_F(ToolFixture, RowSelectionToggles) {
  click("Local Diagnostics");
  click("Engine");
  click("Read Data Stream");
  EXPECT_EQ(tool_.selected_rows(), 0u);
  click("[ ]");
  EXPECT_EQ(tool_.selected_rows(), 1u);
  click("[x]");
  EXPECT_EQ(tool_.selected_rows(), 0u);
}

TEST_F(ToolFixture, LiveViewPollsAndDisplaysValues) {
  click("Local Diagnostics");
  click("Engine");
  click("Read Data Stream");
  // Select every row on the page.
  while (click("[ ]")) {
  }
  ASSERT_GT(tool_.selected_rows(), 0u);
  click("Start");
  EXPECT_EQ(tool_.mode(), DiagnosticTool::Mode::kDataLive);
  tool_.run_for(3 * util::kSecond);
  // Values should be painted (not "--") and traffic generated.
  std::size_t painted = 0;
  for (const auto& w : tool_.screen().widgets) {
    if (w.kind == Widget::Kind::kValueText && w.text != "--") ++painted;
  }
  EXPECT_GT(painted, 0u);
  EXPECT_GT(sniffer_.size(), 10u);
}

TEST_F(ToolFixture, DisplayedValueMatchesGroundTruthFormula) {
  click("Local Diagnostics");
  click("Engine");
  click("Read Data Stream");
  while (click("[ ]")) {
  }
  click("Start");
  tool_.run_for(3 * util::kSecond);
  // Compare a *constant* signal against the vehicle's ground truth (live
  // signals move during the display lag; a constant one must match up to
  // formatting rounding).
  const auto& ecu_spec = vehicle_.spec().ecus[0];
  for (const auto& w : tool_.screen().widgets) {
    if (w.kind != Widget::Kind::kValueText || w.row < 0) continue;
    if (w.text == "--") continue;
    const auto& sig = ecu_spec.uds_signals[static_cast<std::size_t>(w.row)];
    if (sig.pattern != vehicle::RawSignal::Pattern::kConstant) continue;
    const auto truth = vehicle_.physical_value(sig.did);
    ASSERT_TRUE(truth.has_value());
    const double displayed = std::stod(w.text);
    EXPECT_NEAR(displayed, *truth, std::max(1.0, std::abs(*truth)) * 0.01);
    return;
  }
  GTEST_SKIP() << "no constant signal painted on page 1";
}

TEST_F(ToolFixture, ActiveTestTriggersActuator) {
  click("Local Diagnostics");
  click("Main Body");
  ASSERT_TRUE(click("Active Test"));
  EXPECT_EQ(tool_.mode(), DiagnosticTool::Mode::kActiveTest);
  // Click the first actuator button.
  const auto& acts = vehicle_.spec().ecus[1].actuators;
  ASSERT_FALSE(acts.empty());
  ASSERT_TRUE(click(acts[0].name));
  auto* ecu = vehicle_.find_ecu_with_actuator(acts[0].id);
  ASSERT_NE(ecu, nullptr);
  EXPECT_EQ(ecu->actuator(acts[0].id)->activations(), 1u);
  // Status label reports success.
  bool found_status = false;
  for (const auto& w : tool_.screen().widgets) {
    if (w.text.find("Test OK") != std::string::npos) found_status = true;
  }
  EXPECT_TRUE(found_status);
}

TEST_F(ToolFixture, ObdLiveViewReadsStandardPids) {
  ASSERT_TRUE(click("OBD-II Scan"));
  EXPECT_EQ(tool_.mode(), DiagnosticTool::Mode::kObdLive);
  tool_.run_for(3 * util::kSecond);
  std::size_t painted = 0;
  for (const auto& w : tool_.screen().widgets) {
    if (w.kind == Widget::Kind::kValueText && w.text != "--") ++painted;
  }
  EXPECT_GT(painted, 5u);
}

TEST_F(ToolFixture, BackIconNavigatesUp) {
  click("Local Diagnostics");
  ASSERT_EQ(tool_.mode(), DiagnosticTool::Mode::kEcuList);
  // The back icon is the icon button at the top-left corner.
  bool clicked = false;
  for (const auto& w : tool_.screen().widgets) {
    if (w.kind == Widget::Kind::kIconButton) {
      clicked = tool_.click(w.bounds.center_x(), w.bounds.center_y());
    }
  }
  ASSERT_TRUE(clicked);
  EXPECT_EQ(tool_.mode(), DiagnosticTool::Mode::kMainMenu);
}

TEST(Profiles, ResolutionOrdering) {
  const auto autel = profile_for(ToolKind::kAutel919);
  const auto launch = profile_for(ToolKind::kLaunchX431);
  EXPECT_GT(autel.screen_width, launch.screen_width);
  EXPECT_GT(autel.value_font_px, launch.value_font_px);
  EXPECT_EQ(profile_by_name("AUTEL 919").kind, ToolKind::kAutel919);
  EXPECT_EQ(profile_by_name("VCDS").kind, ToolKind::kVcds);
}

class KwpToolFixture : public ToolFixture {
 protected:
  KwpToolFixture() : ToolFixture(vehicle::CarId::kB) {}
};

TEST_F(KwpToolFixture, KwpLiveViewWorksOverVwTp) {
  click("Local Diagnostics");
  click("Engine");
  click("Read Data Stream");
  while (click("[ ]")) {
  }
  click("Start");
  tool_.run_for(3 * util::kSecond);
  std::size_t painted = 0;
  for (const auto& w : tool_.screen().widgets) {
    if (w.kind == Widget::Kind::kValueText && w.text != "--") ++painted;
  }
  EXPECT_GT(painted, 0u);
}

}  // namespace
}  // namespace dpr::diagtool

namespace dpr::diagtool {
namespace {

class DtcFixture : public ToolFixture {};

TEST_F(DtcFixture, ReadTroubleCodesShowsDtcScreen) {
  click("Local Diagnostics");
  click("Engine");
  ASSERT_TRUE(click("Read Trouble Codes"));
  EXPECT_EQ(tool_.mode(), DiagnosticTool::Mode::kDtcList);
  // The screen lists either codes (P/C/B/U prefix) or the empty notice.
  bool found = false;
  for (const auto& w : tool_.screen().widgets) {
    if (w.kind != Widget::Kind::kLabel) continue;
    if (w.text.find("status") != std::string::npos ||
        w.text.find("No trouble codes") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(DtcFixture, ClearTroubleCodesEmptiesTheStore) {
  click("Local Diagnostics");
  click("Engine");
  ASSERT_TRUE(click("Clear Trouble Codes"));
  // Reading afterwards shows the empty notice.
  click("Read Trouble Codes");
  bool empty_notice = false;
  for (const auto& w : tool_.screen().widgets) {
    if (w.text.find("No trouble codes") != std::string::npos) {
      empty_notice = true;
    }
  }
  EXPECT_TRUE(empty_notice);
}

}  // namespace
}  // namespace dpr::diagtool
