// Deterministic fault injection and the resilient transaction stack:
// injector determinism, per-fault bus behaviour on CAN and K-Line, the
// server-side 0x78/0x21 envelope, the client retry/timeout loop, the
// endpoint stall policy, and a faulty-campaign smoke run.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <iterator>
#include <thread>
#include <utility>
#include <vector>

#include "can/bus.hpp"
#include "core/campaign.hpp"
#include "isotp/endpoint.hpp"
#include "kline/bus.hpp"
#include "uds/client.hpp"
#include "uds/server.hpp"
#include "util/fault.hpp"
#include "util/transact.hpp"

namespace dpr {
namespace {

using can::CanFrame;

can::CanId id(std::uint32_t v) { return can::CanId{v, false}; }

// --- FaultInjector --------------------------------------------------------

TEST(FaultInjector, SameSeedSamePlanReplaysBitIdentically) {
  util::FaultPlan plan = util::FaultPlan::scaled(0.2);
  util::FaultInjector a(plan, util::CounterRng(42, 0));
  util::FaultInjector b(plan, util::CounterRng(42, 0));
  for (int i = 0; i < 500; ++i) {
    const util::SimTime now = i * 100;
    const auto da = a.decide(now);
    const auto db = b.decide(now);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.corrupt, db.corrupt);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_EQ(da.extra_delay, db.extra_delay);
    EXPECT_EQ(da.corrupt_bit, db.corrupt_bit);
  }
  EXPECT_EQ(a.stats().dropped, b.stats().dropped);
  EXPECT_EQ(a.stats().corrupted, b.stats().corrupted);
}

TEST(FaultInjector, DisabledPlanNeverFaults) {
  util::FaultInjector injector(util::FaultPlan{}, util::CounterRng(7, 0));
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 100; ++i) {
    const auto d = injector.decide(i);
    EXPECT_FALSE(d.drop || d.corrupt || d.duplicate);
    EXPECT_EQ(d.extra_delay, 0);
  }
  EXPECT_EQ(injector.stats().dropped, 0u);
}

TEST(FaultInjector, BurstSwallowsAWindow) {
  util::FaultPlan plan;
  plan.burst_rate = 1.0;  // first decision starts a burst
  plan.burst_duration = 10 * util::kMillisecond;
  util::FaultInjector injector(plan, util::CounterRng(1, 0));
  EXPECT_TRUE(injector.decide(0).drop);  // burst starts and swallows
  EXPECT_TRUE(injector.decide(5 * util::kMillisecond).drop);
  EXPECT_GE(injector.stats().bursts, 1u);
  EXPECT_EQ(injector.stats().dropped, 2u);
}

// Decision equality helper for the replay tests below.
bool same_decision(const util::FaultInjector::Decision& a,
                   const util::FaultInjector::Decision& b) {
  return a.drop == b.drop && a.corrupt == b.corrupt &&
         a.duplicate == b.duplicate && a.extra_delay == b.extra_delay &&
         a.corrupt_bit == b.corrupt_bit;
}

TEST(FaultInjector, ShuffledUnitOrderReplaysSequentialDecisionsBitExactly) {
  // Unit n's fate is a pure function of (stream, n): visiting the units in
  // a shuffled order — or only a subset of them — must reproduce the same
  // per-unit decisions as wire order. Bursts are stateful in *sim time*
  // (not in the draws), so they stay off here.
  util::FaultPlan plan = util::FaultPlan::scaled(0.3);
  plan.burst_rate = 0.0;
  constexpr std::size_t kUnits = 400;
  util::FaultInjector sequential(plan, util::CounterRng(77, 1));
  std::vector<util::FaultInjector::Decision> expected(kUnits);
  for (std::size_t u = 0; u < kUnits; ++u) {
    expected[u] = sequential.decide(static_cast<util::SimTime>(u) * 100);
  }
  std::vector<std::size_t> order(kUnits);
  for (std::size_t u = 0; u < kUnits; ++u) order[u] = u;
  std::shuffle(order.begin(), order.end(), util::Rng(123));
  util::FaultInjector shuffled(plan, util::CounterRng(77, 1));
  for (const std::size_t u : order) {
    const auto d =
        shuffled.decide_unit(u, static_cast<util::SimTime>(u) * 100);
    EXPECT_TRUE(same_decision(d, expected[u])) << "unit " << u;
  }
  EXPECT_EQ(shuffled.stats().dropped, sequential.stats().dropped);
  EXPECT_EQ(shuffled.stats().corrupted, sequential.stats().corrupted);
}

TEST(FaultInjector, SkippedUnitsDoNotShiftLaterDraws) {
  // The satellite-1 fix: with sequential draws, a dropped/absent unit
  // shifted every later decision. With counter streams, deciding unit 50
  // cold gives the same bits as deciding units 0..50 in order.
  util::FaultPlan plan = util::FaultPlan::scaled(0.4);
  plan.burst_rate = 0.0;
  util::FaultInjector warm(plan, util::CounterRng(5, 2));
  util::FaultInjector::Decision via_walk;
  for (std::size_t u = 0; u <= 50; ++u) via_walk = warm.decide(0);
  util::FaultInjector cold(plan, util::CounterRng(5, 2));
  EXPECT_TRUE(same_decision(cold.decide_unit(50, 0), via_walk));
}

TEST(FaultInjector, ReplayBitIdenticalAtEveryThreadCount) {
  // Striped parallel replay: k workers each decide a disjoint stripe of
  // units through their own injector view of the same stream. The merged
  // decision table must be bit-identical at 1, 2, and 8 threads — the
  // property that lets any sub-phase of a campaign re-derive its faults
  // independently.
  util::FaultPlan plan = util::FaultPlan::scaled(0.25);
  plan.burst_rate = 0.0;
  constexpr std::size_t kUnits = 512;
  util::FaultInjector sequential(plan, util::CounterRng(99, 4));
  std::vector<util::FaultInjector::Decision> expected(kUnits);
  for (std::size_t u = 0; u < kUnits; ++u) expected[u] = sequential.decide(0);
  for (const unsigned n_threads : {1u, 2u, 8u}) {
    std::vector<util::FaultInjector::Decision> merged(kUnits);
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < n_threads; ++t) {
      workers.emplace_back([&, t] {
        util::FaultInjector injector(plan, util::CounterRng(99, 4));
        for (std::size_t u = t; u < kUnits; u += n_threads) {
          merged[u] = injector.decide_unit(u, 0);
        }
      });
    }
    for (auto& worker : workers) worker.join();
    for (std::size_t u = 0; u < kUnits; ++u) {
      EXPECT_TRUE(same_decision(merged[u], expected[u]))
          << n_threads << " threads, unit " << u;
    }
  }
}

// RawDecision equality helper for the batch tests below.
bool same_raw(const util::FaultInjector::RawDecision& a,
              const util::FaultInjector::RawDecision& b) {
  return a.burst_start == b.burst_start && a.drop == b.drop &&
         a.corrupt == b.corrupt && a.duplicate == b.duplicate &&
         a.jitter == b.jitter && a.corrupt_bit == b.corrupt_bit &&
         a.extra_delay == b.extra_delay;
}

TEST(FaultInjector, DecideBatchMatchesScalarRawDecide) {
  // The SIMD-batched draw path must be bit-identical to the scalar
  // reference for every plan shape: the all-extreme plan exercises the
  // draw-free chance() boundaries, the jitter-heavy plan exercises Lemire
  // rejections (spill draws past the batched column budget), and the
  // scaled plans exercise the ordinary mixed path. Unaligned and huge
  // first_unit values cover the 4-lane blocking.
  util::FaultPlan extremes;
  extremes.drop_rate = 0.0;
  extremes.corrupt_rate = 1.0;
  extremes.duplicate_rate = 1.0;
  extremes.jitter_rate = 1.0;
  util::FaultPlan jittery;
  jittery.jitter_rate = 0.9;
  jittery.max_jitter = 3;  // tiny span: rejection-heavy uniform_int
  const util::FaultPlan plans[] = {util::FaultPlan::scaled(0.05),
                                   util::FaultPlan::scaled(0.5), extremes,
                                   jittery};
  for (std::size_t p = 0; p < std::size(plans); ++p) {
    const util::FaultInjector injector(plans[p], util::CounterRng(31, p));
    for (const std::uint64_t first :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{7},
          std::uint64_t{1000000007}}) {
      util::FaultInjector::RawDecision batch[67];
      injector.decide_batch(first, 67, batch);
      for (std::size_t u = 0; u < 67; ++u) {
        EXPECT_TRUE(same_raw(batch[u], injector.raw_decide(first + u)))
            << "plan " << p << " first " << first << " unit " << u;
      }
    }
  }
}

TEST(FaultInjector, PrefetchedDecideMatchesColdDecideIncludingBursts) {
  // decide() consuming a prefetched window must be bit-identical to a
  // twin injector deciding scalar — decisions, stats, and the stateful
  // burst window (bursts swallow units based on sim time, which the
  // pre-computed raws know nothing about).
  util::FaultPlan plan = util::FaultPlan::scaled(0.3);
  ASSERT_GT(plan.burst_rate, 0.0);
  util::FaultInjector prefetched(plan, util::CounterRng(55, 2));
  util::FaultInjector scalar(plan, util::CounterRng(55, 2));
  util::Rng windows(2026);
  util::SimTime now = 0;
  std::size_t until_refill = 0;
  for (int i = 0; i < 2000; ++i) {
    if (until_refill == 0) {
      until_refill = static_cast<std::size_t>(windows.uniform_int(1, 80));
      prefetched.prefetch(until_refill);  // may exceed kPrefetchMax: clamped
    }
    --until_refill;
    now += windows.uniform_int(0, 600);  // sometimes inside a burst window
    const auto a = prefetched.decide(now);
    const auto b = scalar.decide_unit(static_cast<std::uint64_t>(i), now);
    EXPECT_TRUE(same_decision(a, b)) << "unit " << i;
  }
  EXPECT_EQ(prefetched.stats().delivered, scalar.stats().delivered);
  EXPECT_EQ(prefetched.stats().dropped, scalar.stats().dropped);
  EXPECT_EQ(prefetched.stats().corrupted, scalar.stats().corrupted);
  EXPECT_EQ(prefetched.stats().duplicated, scalar.stats().duplicated);
  EXPECT_EQ(prefetched.stats().jittered, scalar.stats().jittered);
  EXPECT_EQ(prefetched.stats().bursts, scalar.stats().bursts);
}

TEST(FaultInjector, PrefetchIsANoOpForDisabledPlans) {
  util::FaultInjector injector(util::FaultPlan{}, util::CounterRng(1, 0));
  injector.prefetch(64);  // must not draw: disabled plans stay draw-free
  const auto d = injector.decide(0);
  EXPECT_FALSE(d.drop || d.corrupt || d.duplicate);
  EXPECT_EQ(injector.stats().delivered, 1u);
}

TEST(FaultConfig, ScaledPlanTracksTheKnob) {
  EXPECT_FALSE(util::FaultConfig{}.enabled());
  util::FaultConfig config;
  config.rate = 0.01;
  EXPECT_TRUE(config.enabled());
  const auto plan = config.bus_plan();
  EXPECT_DOUBLE_EQ(plan.drop_rate, 0.01);
  EXPECT_GT(plan.corrupt_rate, 0.0);
  EXPECT_GT(config.server_pending_rate(), 0.0);
  EXPECT_GT(config.server_busy_rate(), 0.0);
  // Stable salts give reproducible, distinct child streams.
  EXPECT_EQ(config.rng_for(3)(), config.rng_for(3)());
  EXPECT_NE(config.rng_for(3)(), config.rng_for(4)());
  // Counter streams: same ids reproduce, distinct ids diverge, and the
  // counter stream never collides with the sequential one (bumped salt).
  EXPECT_EQ(config.stream_for(3)(), config.stream_for(3)());
  EXPECT_NE(config.stream_for(3)(), config.stream_for(4)());
  EXPECT_NE(config.stream_for(3)(), config.rng_for(3)());
}

// --- CAN bus faults -------------------------------------------------------

struct CaptureLog {
  std::vector<std::pair<util::SimTime, CanFrame>> frames;
};

CaptureLog run_can(const util::FaultPlan* plan, std::uint64_t seed,
                   std::size_t n_frames) {
  util::SimClock clock;
  can::CanBus bus(clock);
  CaptureLog log;
  bus.attach([&](const CanFrame& frame, util::SimTime t) {
    log.frames.emplace_back(t, frame);
  });
  if (plan != nullptr) bus.set_faults(*plan, util::CounterRng(seed, 0));
  for (std::size_t i = 0; i < n_frames; ++i) {
    bus.send(CanFrame(id(0x100 + static_cast<std::uint32_t>(i)),
                      util::Bytes{static_cast<std::uint8_t>(i), 0xAA, 0x55}));
  }
  bus.deliver_pending();
  return log;
}

TEST(CanBusFaults, ZeroRateInjectorMatchesNoInjectorBitExactly) {
  const auto clean = run_can(nullptr, 0, 32);
  const util::FaultPlan zero;  // all rates 0 -> no RNG draws
  const auto with_injector = run_can(&zero, 99, 32);
  ASSERT_EQ(clean.frames.size(), with_injector.frames.size());
  for (std::size_t i = 0; i < clean.frames.size(); ++i) {
    EXPECT_EQ(clean.frames[i].first, with_injector.frames[i].first);
    EXPECT_EQ(clean.frames[i].second, with_injector.frames[i].second);
  }
}

TEST(CanBusFaults, FullDropRateDeliversNothingButTimeAdvances) {
  util::FaultPlan plan;
  plan.drop_rate = 1.0;
  const auto log = run_can(&plan, 5, 10);
  EXPECT_TRUE(log.frames.empty());

  util::SimClock clock;
  can::CanBus bus(clock);
  bus.set_faults(plan, util::CounterRng(5, 0));
  bus.send(CanFrame(id(0x100), util::Bytes{0x01}));
  bus.deliver_pending();
  EXPECT_GT(clock.now(), 0);  // a dropped frame still occupied the wire
  ASSERT_NE(bus.fault_stats(), nullptr);
  EXPECT_EQ(bus.fault_stats()->dropped, 1u);
  EXPECT_EQ(bus.fault_stats()->delivered, 0u);
}

TEST(CanBusFaults, FullDuplicateRateDeliversEveryFrameTwice) {
  util::FaultPlan plan;
  plan.duplicate_rate = 1.0;
  const auto log = run_can(&plan, 6, 8);
  ASSERT_EQ(log.frames.size(), 16u);
  for (std::size_t i = 0; i < log.frames.size(); i += 2) {
    EXPECT_EQ(log.frames[i].second, log.frames[i + 1].second);
    EXPECT_LT(log.frames[i].first, log.frames[i + 1].first);
  }
}

TEST(CanBusFaults, FullCorruptRateFlipsExactlyOneBit) {
  util::FaultPlan plan;
  plan.corrupt_rate = 1.0;
  const auto clean = run_can(nullptr, 0, 8);
  const auto faulty = run_can(&plan, 7, 8);
  ASSERT_EQ(faulty.frames.size(), clean.frames.size());
  for (std::size_t i = 0; i < clean.frames.size(); ++i) {
    const auto& a = clean.frames[i].second;
    const auto& b = faulty.frames[i].second;
    ASSERT_EQ(a.dlc(), b.dlc());
    int flipped = 0;
    for (std::size_t k = 0; k < a.dlc(); ++k) {
      flipped += __builtin_popcount(a.byte(k) ^ b.byte(k));
    }
    EXPECT_EQ(flipped, 1) << "frame " << i;
  }
}

TEST(CanBusFaults, JitterDelaysDelivery) {
  util::FaultPlan plan;
  plan.jitter_rate = 1.0;
  const auto clean = run_can(nullptr, 0, 8);
  const auto jittered = run_can(&plan, 8, 8);
  ASSERT_EQ(jittered.frames.size(), clean.frames.size());
  EXPECT_GT(jittered.frames.back().first, clean.frames.back().first);
}

// --- K-Line faults --------------------------------------------------------

TEST(KLineFaults, FullDropRateLosesBytesButNotWakeups) {
  util::SimClock clock;
  kline::KLineBus bus(clock);
  std::vector<std::uint8_t> bytes;
  int wakeups = 0;
  bus.attach([&](std::uint8_t b, util::SimTime) { bytes.push_back(b); });
  bus.attach_wakeup([&](kline::Wakeup, util::SimTime) { ++wakeups; });
  util::FaultPlan plan;
  plan.drop_rate = 1.0;
  bus.set_faults(plan, util::CounterRng(11, 0));
  bus.send_wakeup(kline::Wakeup::kFastInit);
  bus.send({0x81, 0x10, 0xF1, 0x81, 0x03});
  bus.deliver_pending();
  EXPECT_TRUE(bytes.empty());
  EXPECT_EQ(wakeups, 1);
  ASSERT_NE(bus.fault_stats(), nullptr);
  EXPECT_EQ(bus.fault_stats()->dropped, 5u);
}

TEST(KLineFaults, CorruptionFlipsOneBitPerByte) {
  util::SimClock clock;
  kline::KLineBus bus(clock);
  std::vector<std::uint8_t> bytes;
  bus.attach([&](std::uint8_t b, util::SimTime) { bytes.push_back(b); });
  util::FaultPlan plan;
  plan.corrupt_rate = 1.0;
  bus.set_faults(plan, util::CounterRng(12, 0));
  const std::vector<std::uint8_t> sent{0x00, 0xFF, 0xA5};
  bus.send(sent);
  bus.deliver_pending();
  ASSERT_EQ(bytes.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(__builtin_popcount(bytes[i] ^ sent[i]), 1);
  }
}

// --- Server-side NRC faults ----------------------------------------------

TEST(ServerFaults, PendingRateEmitsResponsePendingBeforeAnswer) {
  uds::Server server;
  server.add_did(0xF40D, 1, [] { return util::Bytes{0x21}; });
  uds::Server::FaultProfile profile;
  profile.pending_rate = 1.0;
  profile.max_pending = 2;
  server.enable_faults(profile, util::Rng(21));
  const auto responses = server.respond(util::from_hex("22 F4 0D"));
  ASSERT_GE(responses.size(), 2u);
  for (std::size_t i = 0; i + 1 < responses.size(); ++i) {
    EXPECT_EQ(util::to_hex(responses[i]), "7F 22 78");
  }
  EXPECT_EQ(util::to_hex(responses.back()), "62 F4 0D 21");
}

TEST(ServerFaults, BusyRefusesWithoutProcessing) {
  uds::Server server;
  uds::Server::FaultProfile profile;
  profile.busy_rate = 1.0;
  server.enable_faults(profile, util::Rng(22));
  const auto responses = server.respond(util::from_hex("10 03"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(util::to_hex(responses[0]), "7F 10 21");
  // The session switch must NOT have happened.
  EXPECT_EQ(server.active_session(), 0x01);
}

TEST(ServerFaults, NoFaultsMeansExactlyOneHandleResponse) {
  uds::Server server;
  server.add_did(0xF40D, 1, [] { return util::Bytes{0x21}; });
  const auto responses = server.respond(util::from_hex("22 F4 0D"));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(util::to_hex(responses[0]), "62 F4 0D 21");
}

// --- Client retry loop ----------------------------------------------------

/// Scripted MessageLink: each send() delivers the next scripted batch of
/// responses straight to the handler (the pump is a no-op).
class ScriptedLink : public util::MessageLink {
 public:
  void send(std::span<const std::uint8_t> payload) override {
    ++sends;
    last_request.assign(payload.begin(), payload.end());
    if (script.empty()) return;
    auto batch = std::move(script.front());
    script.pop_front();
    for (const auto& message : batch) handler_(message);
  }
  void set_message_handler(Handler handler) override {
    handler_ = std::move(handler);
  }

  std::deque<std::vector<util::Bytes>> script;
  util::Bytes last_request;
  int sends = 0;

 private:
  Handler handler_;
};

TEST(ClientRetry, PendingWaitAbsorbsResponsePending) {
  ScriptedLink link;
  link.script.push_back({util::from_hex("7F 22 78"),
                         util::from_hex("7F 22 78"),
                         util::from_hex("62 F4 0D 21")});
  uds::Client client(link, [] {}, util::TransactPolicy::resilient());
  const auto resp = client.transact(util::from_hex("22 F4 0D"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(util::to_hex(*resp), "62 F4 0D 21");
  EXPECT_EQ(client.stats().pending_waits, 2u);
  EXPECT_EQ(client.stats().retries, 0u);
  EXPECT_EQ(link.sends, 1);
}

TEST(ClientRetry, BusyRepeatRequestTriggersResend) {
  util::SimClock clock;
  ScriptedLink link;
  link.script.push_back({util::from_hex("7F 22 21")});
  link.script.push_back({util::from_hex("62 F4 0D 21")});
  uds::Client client(link, [] {}, util::TransactPolicy::resilient(), &clock);
  const auto resp = client.transact(util::from_hex("22 F4 0D"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(client.stats().busy_retries, 1u);
  EXPECT_EQ(link.sends, 2);
  // The busy backoff advanced simulated time by P2*.
  EXPECT_GE(clock.now(), util::TransactPolicy{}.p2_star);
}

TEST(ClientRetry, LostResponseRetriedThenRecovered) {
  ScriptedLink link;
  link.script.push_back({});  // response lost on the wire
  link.script.push_back({util::from_hex("62 F4 0D 21")});
  uds::Client client(link, [] {}, util::TransactPolicy::resilient());
  const auto resp = client.transact(util::from_hex("22 F4 0D"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(client.stats().retries, 1u);
  EXPECT_EQ(client.stats().failures, 0u);
}

TEST(ClientRetry, ExhaustedRetriesRecordAFailure) {
  ScriptedLink link;  // empty script: every attempt times out
  uds::Client client(link, [] {}, util::TransactPolicy::resilient());
  const auto resp = client.transact(util::from_hex("22 F4 0D"));
  EXPECT_FALSE(resp.has_value());
  EXPECT_EQ(link.sends, util::TransactPolicy::resilient().max_retries + 1);
  EXPECT_EQ(client.stats().failures, 1u);
}

TEST(ClientRetry, DefaultPolicyIsSingleShot) {
  ScriptedLink link;
  uds::Client client(link, [] {});
  EXPECT_FALSE(client.transact(util::from_hex("22 F4 0D")).has_value());
  EXPECT_EQ(link.sends, 1);
  EXPECT_EQ(client.stats().retries, 0u);
}

// --- Endpoint stall policy ------------------------------------------------

TEST(EndpointStall, AbortStaleReapsAfterNbsTimeout) {
  util::SimClock clock;
  can::CanBus bus(clock);
  isotp::EndpointConfig config{id(0x7E0), id(0x7E8)};
  config.stall_policy = isotp::StallPolicy::kAbortStale;
  config.n_bs_timeout = 100 * util::kMillisecond;
  isotp::Endpoint endpoint(bus, config);  // no peer: FC never arrives

  util::Bytes long_payload(50, 0x11);
  endpoint.send(long_payload);
  bus.deliver_pending();
  EXPECT_TRUE(endpoint.send_in_progress());

  // Before N_Bs expires the new send is rejected, not a crash.
  endpoint.send(long_payload);
  EXPECT_EQ(endpoint.stats().tx_rejected, 1u);
  EXPECT_EQ(endpoint.stats().tx_aborted, 0u);

  // After N_Bs the stale transmission is reaped and the send proceeds.
  clock.advance(200 * util::kMillisecond);
  endpoint.send(long_payload);
  EXPECT_EQ(endpoint.stats().tx_aborted, 1u);
  EXPECT_TRUE(endpoint.send_in_progress());
}

// --- Campaign smoke -------------------------------------------------------

core::CampaignOptions smoke_options() {
  core::CampaignOptions options;
  options.live_window = 4 * util::kSecond;
  options.gp.population = 48;
  options.gp.max_generations = 8;
  return options;
}

TEST(CampaignFaults, FaultyCampaignCompletesAndRecordsFaultStats) {
  auto options = smoke_options();
  options.faults.rate = 0.02;
  core::Campaign campaign(vehicle::CarId::kA, options);
  campaign.collect();
  campaign.analyze();
  const auto& report = campaign.report();
  EXPECT_TRUE(report.completed);
  EXPECT_GT(report.transactions.transactions, 0u);
  EXPECT_GT(report.bus_faults.dropped, 0u);
  EXPECT_FALSE(report.signals.empty());
}

TEST(CampaignFaults, CleanCampaignSpendsNoRetries) {
  core::Campaign campaign(vehicle::CarId::kA, smoke_options());
  campaign.collect();
  campaign.analyze();
  const auto& report = campaign.report();
  EXPECT_EQ(report.transactions.retries, 0u);
  EXPECT_EQ(report.transactions.busy_retries, 0u);
  EXPECT_EQ(report.transactions.pending_waits, 0u);
  EXPECT_EQ(report.transactions.failures, 0u);
  EXPECT_TRUE(report.failed_transactions.empty());
  EXPECT_EQ(report.bus_faults.delivered, 0u);  // no injector installed
}

}  // namespace
}  // namespace dpr
