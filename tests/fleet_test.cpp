// Fleet-level parallelism tests: a multi-threaded core::FleetRunner must
// be bit-identical to the plain serial campaign loop for every thread
// count (campaigns are fully independent and internally seeded), and the
// analyze-phase caching must not change any finding.

#include <gtest/gtest.h>

#include "core/fleet.hpp"
#include "gp/batch.hpp"
#include "util/thread_pool.hpp"

namespace dpr::core {
namespace {

/// Small-but-real settings: enough traffic for stable findings, GP small
/// enough that the 3-car x 3-run matrix stays fast.
CampaignOptions small_options() {
  CampaignOptions options;
  options.live_window = 6 * util::kSecond;
  options.gp.population = 64;
  options.gp.max_generations = 10;
  return options;
}

/// One UDS car, one KWP-over-VWTP car, one BMW-framing car.
std::vector<vehicle::CarId> small_fleet() {
  return {vehicle::CarId::kA, vehicle::CarId::kB, vehicle::CarId::kE};
}

TEST(Fleet, ParallelRunMatchesSerialLoopBitExactly) {
  const auto cars = small_fleet();

  // Reference: the plain serial loop full_campaign.cpp used to run.
  std::string serial_signature;
  for (const auto car : cars) {
    Campaign campaign(car, small_options());
    campaign.collect();
    campaign.analyze();
    serial_signature += report_signature(campaign.report());
  }

  FleetOptions one;
  one.fleet_threads = 1;
  one.campaign = small_options();
  const auto serial_summary = FleetRunner(one).run(cars);
  EXPECT_EQ(serial_summary.threads_used, 1u);
  EXPECT_EQ(fleet_signature(serial_summary), serial_signature);

  FleetOptions four;
  four.fleet_threads = 4;
  four.campaign = small_options();
  const auto parallel_summary = FleetRunner(four).run(cars);
  EXPECT_EQ(parallel_summary.threads_used, 4u);
  EXPECT_EQ(fleet_signature(parallel_summary), serial_signature);

  // Results come back in input order regardless of completion order.
  ASSERT_EQ(parallel_summary.reports.size(), cars.size());
  EXPECT_EQ(parallel_summary.reports[0].car_label, "Car A");
  EXPECT_EQ(parallel_summary.reports[1].car_label, "Car B");
  EXPECT_EQ(parallel_summary.reports[2].car_label, "Car E");
}

TEST(Fleet, SharedBudgetOffStillDeterministic) {
  const auto cars = small_fleet();
  FleetOptions shared;
  shared.fleet_threads = 3;
  shared.campaign = small_options();
  FleetOptions owned = shared;
  owned.share_thread_budget = false;
  EXPECT_EQ(fleet_signature(FleetRunner(shared).run(cars)),
            fleet_signature(FleetRunner(owned).run(cars)));
}

TEST(Fleet, SummaryAggregatesPhaseTimingsAndTotals) {
  FleetOptions options;
  options.fleet_threads = 2;
  options.campaign = small_options();
  const auto summary =
      FleetRunner(options).run({vehicle::CarId::kA, vehicle::CarId::kB});

  EXPECT_GT(summary.wall_s, 0.0);
  EXPECT_GT(summary.phase_totals.collect_s, 0.0);
  EXPECT_GT(summary.phase_totals.assemble_s, 0.0);
  EXPECT_GT(summary.phase_totals.ocr_extract_s, 0.0);
  EXPECT_GT(summary.phase_totals.align_s, 0.0);
  EXPECT_GT(summary.phase_totals.associate_s, 0.0);
  EXPECT_GT(summary.phase_totals.infer_s, 0.0);
  EXPECT_GT(summary.phase_totals.score_s, 0.0);
  EXPECT_GT(summary.phase_totals.total_s(), 0.0);
  for (const auto& report : summary.reports) {
    EXPECT_GT(report.phases.collect_s, 0.0);
    EXPECT_GT(report.phases.infer_s, 0.0);
  }

  EXPECT_EQ(summary.total_signals(),
            summary.reports[0].signals.size() +
                summary.reports[1].signals.size());
  EXPECT_EQ(summary.total_formula_signals() + summary.total_enum_signals(),
            summary.total_signals());
  EXPECT_GT(summary.total_gp_correct(), 0u);
  EXPECT_GT(summary.total_ecrs(), 0u);
}

TEST(Fleet, CachedAnalysisMatchesLegacyRecomputePath) {
  // Car A: OBD-aligned (IsoTp); Car B: alignment falls back to the
  // change-latency estimator, the path where build_associations used to
  // run twice. Both must be unaffected by the caching.
  for (const auto car : {vehicle::CarId::kA, vehicle::CarId::kB}) {
    CampaignOptions cached = small_options();
    cached.cache_analysis = true;
    Campaign with_cache(car, cached);
    with_cache.collect();
    with_cache.analyze();

    CampaignOptions legacy = small_options();
    legacy.cache_analysis = false;
    Campaign without_cache(car, legacy);
    without_cache.collect();
    without_cache.analyze();

    EXPECT_EQ(report_signature(with_cache.report()),
              report_signature(without_cache.report()))
        << "car " << static_cast<int>(car);
  }
}

TEST(Fleet, TapeEvalMatchesTreeEvalSignatures) {
  // The acceptance gate for the bytecode engine: the whole pipeline's
  // report signatures — formula strings, fitness bits, ECR findings —
  // must be identical whether GP fitness is scored by the legacy
  // recursive tree walker or by the compiled tape (with the structural
  // cache), at every GP thread count.
  const auto cars = small_fleet();
  FleetOptions tree;
  tree.fleet_threads = 1;
  tree.campaign = small_options();
  tree.campaign.live_window = 4 * util::kSecond;
  tree.campaign.gp.population = 48;
  tree.campaign.gp.use_tape = false;
  const auto reference = fleet_signature(FleetRunner(tree).run(cars));

  for (const std::size_t threads : {1u, 2u, 8u}) {
    FleetOptions tape = tree;
    tape.campaign.gp.use_tape = true;
    tape.campaign.gp.n_threads = threads;
    const auto signature = fleet_signature(FleetRunner(tape).run(cars));
    EXPECT_EQ(signature, reference) << "gp threads " << threads;
  }
}

TEST(Fleet, FaultyFleetBitIdenticalAcrossThreadCounts) {
  // The determinism contract must survive fault injection: every fault
  // draw happens on campaign-owned state in wire-delivery order, so a
  // faulty fleet replays bit-identically at any thread count.
  const auto cars = small_fleet();
  FleetOptions options;
  options.campaign = small_options();
  options.campaign.live_window = 4 * util::kSecond;
  options.campaign.gp.population = 48;
  options.campaign.faults.rate = 0.01;
  options.campaign.faults.fault_seed = 0xBADC0FFEULL;

  std::string reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    options.fleet_threads = threads;
    const auto summary = FleetRunner(options).run(cars);
    const auto signature = fleet_signature(summary);
    if (reference.empty()) {
      reference = signature;
      // The faults really fired and the campaigns really recovered.
      util::FaultStats bus;
      for (const auto& report : summary.reports) bus += report.bus_faults;
      EXPECT_GT(bus.dropped, 0u);
      EXPECT_EQ(summary.cars_failed(), 0u);
    } else {
      EXPECT_EQ(signature, reference) << threads << " threads";
    }
  }
}

TEST(Fleet, ThrowingCampaignBecomesFailedSlotNotFleetAbort) {
  FleetOptions options;
  options.fleet_threads = 2;
  options.campaign = small_options();
  options.campaign.live_window = 2 * util::kSecond;
  options.campaign.run_inference = false;
  options.campaign.run_baselines = false;
  // An id outside the catalog makes the campaign constructor throw —
  // the fleet must capture that into the slot, not terminate.
  const auto summary = FleetRunner(options).run(
      {vehicle::CarId::kA, static_cast<vehicle::CarId>(99)});
  ASSERT_EQ(summary.reports.size(), 2u);
  EXPECT_TRUE(summary.reports[0].completed);
  EXPECT_FALSE(summary.reports[1].completed);
  EXPECT_FALSE(summary.reports[1].failure_reason.empty());
  EXPECT_EQ(summary.cars_ok(), 1u);
  EXPECT_EQ(summary.cars_failed(), 1u);
}

TEST(Fleet, BatchRunnerSharedPoolMatchesOwnedPool) {
  correlate::Dataset dataset;
  dataset.n_vars = 1;
  for (int i = 0; i < 40; ++i) {
    correlate::DataPoint point;
    point.xs = {static_cast<double>(i * 5)};
    point.y = 0.4 * point.xs[0] + 3.0;
    dataset.points.push_back(point);
  }
  gp::GpConfig config;
  config.population = 48;
  config.max_generations = 8;

  std::vector<gp::BatchJob> jobs;
  for (std::size_t i = 0; i < 6; ++i) {
    gp::BatchJob job;
    job.dataset = &dataset;
    job.config = config;
    job.config.seed ^= i * 0x9E3779B9ULL;
    jobs.push_back(job);
  }

  const auto owned = gp::BatchRunner(2).run(jobs);
  util::ThreadPool pool(2);
  const auto shared = gp::BatchRunner(pool).run(jobs);
  ASSERT_EQ(owned.size(), shared.size());
  for (std::size_t i = 0; i < owned.size(); ++i) {
    ASSERT_EQ(owned[i].has_value(), shared[i].has_value());
    if (owned[i]) {
      EXPECT_EQ(owned[i]->formula, shared[i]->formula);
      EXPECT_EQ(owned[i]->fitness, shared[i]->fitness);
    }
  }
}

}  // namespace
}  // namespace dpr::core
