#include <gtest/gtest.h>

#include "can/trace.hpp"
#include "frames/analysis.hpp"
#include "frames/fields.hpp"
#include "isotp/isotp.hpp"
#include "oemtp/bmw_framing.hpp"
#include "vwtp/vwtp.hpp"

namespace dpr::frames {
namespace {

can::CanId id(std::uint32_t v) { return can::CanId{v, false}; }

std::vector<can::TimestampedFrame> stamp(
    const std::vector<can::CanFrame>& frames, util::SimTime start = 1000) {
  std::vector<can::TimestampedFrame> out;
  util::SimTime t = start;
  for (const auto& frame : frames) {
    out.push_back({t, frame});
    t += 500;
  }
  return out;
}

TEST(Census, CountsIsoTpFrameTypes) {
  util::Bytes long_payload(20, 0xAA);
  auto frames = isotp::segment_message(id(0x7E8), long_payload);  // FF+2CF
  frames.push_back(isotp::encode_single(id(0x7E0), util::from_hex("3E 00")));
  frames.push_back(
      isotp::encode_flow_control(id(0x7E0), isotp::FlowControl{}));
  const auto c = census(stamp(frames), TransportHint::kIsoTp);
  EXPECT_EQ(c.single_frames, 1u);
  EXPECT_EQ(c.first_frames, 1u);
  EXPECT_EQ(c.consecutive_frames, 2u);
  EXPECT_EQ(c.flow_control_frames, 1u);
  EXPECT_EQ(c.multi_frames(), 3u);
  EXPECT_EQ(c.total(), 5u);
}

TEST(Census, CountsVwtpDataAndControl) {
  util::Bytes payload(20, 0xBB);
  auto frames = vwtp::segment_message(id(0x740), payload);  // 3 data frames
  frames.push_back(vwtp::encode_ack(id(0x300), 3));
  frames.push_back(can::CanFrame(0x740, {0xA8}));  // disconnect
  const auto c = census(stamp(frames), TransportHint::kVwTp20);
  EXPECT_EQ(c.vwtp_data_more, 2u);
  EXPECT_EQ(c.vwtp_data_last, 1u);
  EXPECT_EQ(c.vwtp_control, 2u);
}

TEST(Assemble, IsoTpScreensFlowControlAndReassembles) {
  util::Bytes request = util::from_hex("22 F4 0D");
  util::Bytes response(25, 0x62);
  std::vector<can::CanFrame> frames;
  for (auto& f : isotp::segment_message(id(0x7E0), request))
    frames.push_back(f);
  auto resp_frames = isotp::segment_message(id(0x7E8), response);
  frames.push_back(resp_frames[0]);  // FF
  frames.push_back(
      isotp::encode_flow_control(id(0x7E0), isotp::FlowControl{}));
  for (std::size_t i = 1; i < resp_frames.size(); ++i) {
    frames.push_back(resp_frames[i]);
  }
  const auto messages = assemble(stamp(frames), TransportHint::kIsoTp);
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].payload, request);
  EXPECT_EQ(messages[1].payload, response);
  EXPECT_EQ(messages[1].can_id, 0x7E8u);
}

TEST(Assemble, InterleavedIdsKeptSeparate) {
  util::Bytes a(20, 0x11), b(20, 0x22);
  const auto fa = isotp::segment_message(id(0x7E8), a);
  const auto fb = isotp::segment_message(id(0x712), b);
  // Interleave the two conversations frame by frame.
  std::vector<can::CanFrame> mixed;
  for (std::size_t i = 0; i < fa.size(); ++i) {
    mixed.push_back(fa[i]);
    mixed.push_back(fb[i]);
  }
  const auto messages = assemble(stamp(mixed), TransportHint::kIsoTp);
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].payload, a);
  EXPECT_EQ(messages[1].payload, b);
}

TEST(Assemble, VwtpConcatenatesUntilLastFrame) {
  util::Bytes payload(33, 0x61);
  const auto frames = vwtp::segment_message(id(0x300), payload);
  const auto messages = assemble(stamp(frames), TransportHint::kVwTp20);
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].payload, payload);
}

TEST(Assemble, BmwStripsAddressByte) {
  const util::Bytes payload = util::from_hex("62 DB E5 12 34 56 78 9A");
  const auto frames = oemtp::segment_bmw(id(0x652), 0xF1, payload);
  const auto messages = assemble(stamp(frames), TransportHint::kBmwFraming);
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].payload, payload);
}

TEST(Assemble, BmwInterleavedAddressesOnSharedId) {
  // Two multi-frame requests to different ECUs on the shared tester id.
  const util::Bytes to_a(15, 0xAA), to_b(15, 0xBB);
  const auto fa = oemtp::segment_bmw(id(0x6F1), 0x12, to_a);
  const auto fb = oemtp::segment_bmw(id(0x6F1), 0x22, to_b);
  std::vector<can::CanFrame> mixed;
  for (std::size_t i = 0; i < fa.size(); ++i) {
    mixed.push_back(fa[i]);
    mixed.push_back(fb[i]);
  }
  const auto messages = assemble(stamp(mixed), TransportHint::kBmwFraming);
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].payload, to_a);
  EXPECT_EQ(messages[1].payload, to_b);
}

// --- Field extraction --------------------------------------------------------

std::vector<DiagMessage> conversation(
    std::initializer_list<std::string> hex_messages) {
  std::vector<DiagMessage> out;
  util::SimTime t = 1000;
  for (const auto& hex : hex_messages) {
    out.push_back(DiagMessage{t, 0x7E0, util::from_hex(hex)});
    t += 1000;
  }
  return out;
}

TEST(Fields, UdsEsvExtractionViaRequestReference) {
  const auto result = extract_fields(conversation({
      "22 F4 0D F4 1A",
      "62 F4 0D 21 F4 1A 01 F4",  // speed: 1 byte; other: 2 bytes
  }));
  ASSERT_EQ(result.esvs.size(), 2u);
  EXPECT_EQ(result.esvs[0].did, 0xF40D);
  EXPECT_EQ(result.esvs[0].data, util::Bytes{0x21});
  EXPECT_EQ(result.esvs[1].did, 0xF41A);
  EXPECT_EQ(result.esvs[1].data, (util::Bytes{0x01, 0xF4}));
}

TEST(Fields, UdsResponseWithoutRequestIsUnmatched) {
  const auto result = extract_fields(conversation({"62 F4 0D 21"}));
  EXPECT_TRUE(result.esvs.empty());
  EXPECT_EQ(result.unmatched_responses, 1u);
}

TEST(Fields, NegativeResponseVoidsPendingRequest) {
  const auto result = extract_fields(conversation({
      "22 F4 0D",
      "7F 22 31",
      "62 F4 0D 21",  // stale positive afterwards: unmatched
  }));
  EXPECT_TRUE(result.esvs.empty());
  EXPECT_EQ(result.unmatched_responses, 1u);
}

TEST(Fields, KwpEsvRecordsExtracted) {
  const auto result = extract_fields(conversation({
      "21 07",
      "61 07 01 F1 10 07 64 55",
  }));
  ASSERT_EQ(result.esvs.size(), 2u);
  EXPECT_TRUE(result.esvs[0].is_kwp);
  EXPECT_EQ(result.esvs[0].local_id, 0x07);
  EXPECT_EQ(result.esvs[0].esv_index, 0u);
  EXPECT_EQ(result.esvs[0].formula_type, 0x01);
  EXPECT_EQ(result.esvs[0].x0, 0xF1);
  EXPECT_EQ(result.esvs[0].x1, 0x10);
  EXPECT_EQ(result.esvs[1].esv_index, 1u);
}

TEST(Fields, EcrExtractionRequiresPositiveResponse) {
  const auto result = extract_fields(conversation({
      "2F 09 50 02",
      "6F 09 50 02",
      "2F 09 50 03 05 01 00 00",
      "6F 09 50 03 05 01 00 00",
      "2F 09 51 03 01",
      "7F 2F 31",  // rejected: not extracted
  }));
  ASSERT_EQ(result.ecrs.size(), 2u);
  EXPECT_TRUE(result.ecrs[0].is_uds);
  EXPECT_EQ(result.ecrs[0].id, 0x0950);
  EXPECT_EQ(result.ecrs[0].io_param, 0x02);
  EXPECT_EQ(result.ecrs[1].control_state,
            util::from_hex("05 01 00 00"));
}

TEST(Fields, KwpEcrViaService30) {
  const auto result = extract_fields(conversation({
      "30 15 00 40 00",
      "70 15 00",
  }));
  ASSERT_EQ(result.ecrs.size(), 1u);
  EXPECT_FALSE(result.ecrs[0].is_uds);
  EXPECT_EQ(result.ecrs[0].id, 0x15);
  EXPECT_EQ(result.ecrs[0].io_param, 0x00);
  EXPECT_EQ(result.ecrs[0].control_state, util::from_hex("40 00"));
}

TEST(Procedures, ThreeMessagePatternDetected) {
  const auto result = extract_fields(conversation({
      "2F 09 50 02", "6F 09 50 02",
      "2F 09 50 03 05 01 00 00", "6F 09 50 03 05 01 00 00",
      "2F 09 50 00", "6F 09 50 00",
  }));
  const auto procedures = extract_procedures(result.ecrs);
  ASSERT_EQ(procedures.size(), 1u);
  EXPECT_TRUE(procedures[0].matches_three_message_pattern());
  EXPECT_EQ(procedures[0].param_sequence,
            (std::vector<std::uint8_t>{0x02, 0x03, 0x00}));
  EXPECT_EQ(procedures[0].adjustment_state, util::from_hex("05 01 00 00"));
}

TEST(Procedures, IncompleteSequenceNotMatched) {
  const auto result = extract_fields(conversation({
      "2F 09 50 03 05", "6F 09 50 03 05",
      "2F 09 50 00", "6F 09 50 00",
  }));
  const auto procedures = extract_procedures(result.ecrs);
  ASSERT_EQ(procedures.size(), 1u);
  EXPECT_FALSE(procedures[0].matches_three_message_pattern());
}

TEST(Procedures, SortedByFirstObservation) {
  const auto result = extract_fields(conversation({
      "2F 09 60 02", "6F 09 60 02",
      "2F 09 50 02", "6F 09 50 02",
  }));
  const auto procedures = extract_procedures(result.ecrs);
  ASSERT_EQ(procedures.size(), 2u);
  EXPECT_EQ(procedures[0].id, 0x0960);
  EXPECT_EQ(procedures[1].id, 0x0950);
}

}  // namespace
}  // namespace dpr::frames

namespace dpr::frames {
namespace {

TEST(OfflineAnalysis, CaptureSurvivesTraceRoundTrip) {
  // Persist a capture to the text trace format and analyze the reloaded
  // copy: message assembly must be identical (offline re-analysis).
  util::Bytes request = util::from_hex("22 F4 0D");
  util::Bytes response(25, 0x62);
  std::vector<can::TimestampedFrame> capture;
  util::SimTime t = 1000;
  for (auto& f : isotp::segment_message(can::CanId{0x7E0, false}, request))
    capture.push_back({t += 500, f});
  for (auto& f : isotp::segment_message(can::CanId{0x7E8, false}, response))
    capture.push_back({t += 500, f});

  const auto reloaded =
      can::trace_from_string(can::trace_to_string(capture));
  const auto original = assemble(capture, TransportHint::kIsoTp);
  const auto roundtrip = assemble(reloaded, TransportHint::kIsoTp);
  ASSERT_EQ(original.size(), roundtrip.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i].payload, roundtrip[i].payload);
    EXPECT_EQ(original[i].timestamp, roundtrip[i].timestamp);
  }
}

}  // namespace
}  // namespace dpr::frames
