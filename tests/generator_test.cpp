// vehicle::Generator tests: procedural car specs must be reproducible
// (same config + seed -> byte-identical digest and bit-identical
// campaign findings at any fleet thread count), collision-free by
// construction, and first-class citizens of the checkpoint/resume
// machinery.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "vehicle/generator.hpp"

namespace dpr::vehicle {
namespace {

GeneratorConfig default_config() { return GeneratorConfig{}; }

TEST(Generator, SameSeedIsByteIdentical) {
  const auto a = generate_car(default_config(), 42);
  const auto b = generate_car(default_config(), 42);
  EXPECT_EQ(spec_digest(a), spec_digest(b));
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.model, b.model);
  EXPECT_EQ(a.ecus.size(), b.ecus.size());
  EXPECT_EQ(a.gen_seed, 42u);
}

TEST(Generator, DistinctSeedsDistinctDigests) {
  std::set<std::uint64_t> digests;
  const auto fleet = generate_fleet(default_config(), 1, 48);
  for (const auto& spec : fleet) digests.insert(spec_digest(spec));
  EXPECT_EQ(digests.size(), fleet.size());
}

TEST(Generator, EverySpecPassesInvariants) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const auto spec = generate_car(default_config(), seed);
    // generate_car validates internally; re-validating the returned spec
    // proves the object handed to callers is the one that was checked.
    EXPECT_NO_THROW(validate_spec(spec)) << "seed " << seed;

    // Car-global uniqueness by construction (satellite: no silent
    // request-routing ambiguity in the simulated vehicle).
    std::set<std::uint16_t> dids;
    std::set<std::uint8_t> locals;
    std::set<std::uint16_t> actuators;
    bool any_signal = false;
    for (const auto& ecu : spec.ecus) {
      for (const auto& sig : ecu.uds_signals) {
        any_signal = true;
        EXPECT_TRUE(dids.insert(sig.did).second) << "seed " << seed;
        EXPECT_GE(sig.did, 0xF000u);
        EXPECT_FALSE(sig.name.empty());
        EXPECT_GE(sig.data_bytes, 1u);
        // Full ground truth: every signal carries a decode formula (or
        // the explicit kEnum marker), so score_findings can verify it.
        if (sig.formula.kind() != PropFormula::Kind::kEnum) {
          EXPECT_LE(sig.raw_lo, sig.raw_hi)
              << "seed " << seed << " did " << sig.did;
        }
      }
      for (const auto& block : ecu.kwp_local_ids) {
        EXPECT_TRUE(locals.insert(block.local_id).second) << "seed " << seed;
        EXPECT_FALSE(block.esvs.empty());
      }
      for (const auto& act : ecu.actuators) {
        EXPECT_TRUE(actuators.insert(act.id).second) << "seed " << seed;
      }
    }
    EXPECT_TRUE(any_signal || !locals.empty()) << "seed " << seed;

    // Protocol/transport/IO-service combinations the stacks support.
    if (spec.protocol == Protocol::kUds) {
      EXPECT_NE(spec.transport, TransportKind::kVwTp20) << "seed " << seed;
    } else {
      EXPECT_NE(spec.transport, TransportKind::kBmwFraming)
          << "seed " << seed;
      EXPECT_NE(spec.io_service, IoService::kUds2F) << "seed " << seed;
    }
  }
}

core::FleetOptions light_options() {
  core::FleetOptions options;
  options.campaign.live_window = 4 * util::kSecond;
  options.campaign.gp.population = 48;
  options.campaign.gp.max_generations = 8;
  return options;
}

TEST(Generator, FleetSignatureIdenticalAcrossThreadCounts) {
  const auto specs = generate_fleet(default_config(), 7, 4);
  std::string reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    auto options = light_options();
    options.fleet_threads = threads;
    const auto summary = core::FleetRunner(options).run(specs);
    EXPECT_EQ(summary.cars_failed(), 0u) << threads << " threads";
    const auto signature = core::fleet_signature(summary);
    if (reference.empty()) {
      reference = signature;
      // Generated cars report under their generated labels, and the
      // digest in each report matches its spec.
      for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(summary.reports[i].car_label, specs[i].label);
        EXPECT_EQ(summary.reports[i].spec_digest, spec_digest(specs[i]));
      }
    } else {
      EXPECT_EQ(signature, reference) << threads << " threads";
    }
  }
}

TEST(Generator, CheckpointResumeMatchesFreshRun) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("dpr_gen_ckpt_" +
        std::to_string(static_cast<unsigned>(::getpid()))))
          .string();
  std::filesystem::remove_all(dir);

  const auto spec = generate_car(default_config(), 1234);
  const auto base = light_options().campaign;

  core::Campaign fresh(spec, base);
  fresh.run();
  const auto fresh_signature = core::report_signature(fresh.report());

  auto interrupted = base;
  interrupted.checkpoint_dir = dir;
  interrupted.stop_after_phase = 2;
  core::Campaign first(spec, interrupted);
  first.run();  // leaves a checkpoint at the phase boundary

  auto resumed_options = base;
  resumed_options.checkpoint_dir = dir;
  resumed_options.resume = true;
  core::Campaign resumed(spec, resumed_options);
  resumed.run();
  EXPECT_EQ(core::report_signature(resumed.report()), fresh_signature);
  std::filesystem::remove_all(dir);
}

TEST(Generator, CatalogCarsUnchangedByStreamSalt) {
  // gen_seed == 0 must reduce the stream salt to the plain car id, so
  // every catalog campaign reproduces its pre-generator findings.
  for (const auto& spec : catalog()) {
    EXPECT_EQ(spec.gen_seed, 0u);
    EXPECT_EQ(car_stream_salt(spec), static_cast<std::uint64_t>(spec.id));
  }
}

TEST(Generator, InvertedConfigRangeThrows) {
  GeneratorConfig config;
  config.ecus_min = 4;
  config.ecus_max = 2;
  EXPECT_THROW(generate_car(config, 1), std::invalid_argument);
}

}  // namespace
}  // namespace dpr::vehicle
