// Differential tests for the gp::Program bytecode engine: the tape must
// reproduce the recursive tree walker bit for bit (the fleet's
// report_signature determinism gates depend on it), the structural
// fitness cache must never change a result, and deep trees must never
// touch the C stack limits.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

#include "gp/engine.hpp"
#include "gp/expr.hpp"
#include "gp/kernels.hpp"
#include "gp/program.hpp"

namespace dpr::gp {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Forces a kernel table for one scope and restores the old setting.
class SimdGuard {
 public:
  explicit SimdGuard(bool enable) : previous_(simd_enabled()) {
    set_simd_enabled(enable);
  }
  ~SimdGuard() { set_simd_enabled(previous_); }

 private:
  bool previous_;
};

TEST(SampleMatrix, ColumnMajorLayout) {
  const std::vector<std::vector<double>> rows{{1.0, 10.0},
                                             {2.0, 20.0},
                                             {3.0, 30.0}};
  const auto matrix = SampleMatrix::from_rows(rows, 2);
  EXPECT_EQ(matrix.n_samples(), 3u);
  EXPECT_EQ(matrix.n_vars(), 2u);
  const auto x0 = matrix.column(0);
  const auto x1 = matrix.column(1);
  ASSERT_EQ(x0.size(), 3u);
  EXPECT_DOUBLE_EQ(x0[0], 1.0);
  EXPECT_DOUBLE_EQ(x0[2], 3.0);
  EXPECT_DOUBLE_EQ(x1[1], 20.0);
  // Columns really are contiguous.
  EXPECT_EQ(x0.data() + 3, x1.data());
}

TEST(SampleMatrix, RowWidthMismatchRejected) {
  const std::vector<std::vector<double>> rows{{1.0, 2.0}, {3.0}};
  EXPECT_THROW(SampleMatrix::from_rows(rows, 2), std::invalid_argument);
}

TEST(Program, CompilesToPostfixTape) {
  // (X0 * X1) / 5 — five nodes, five instructions, one pool constant.
  const auto expr = Expr::binary(
      Op::kDiv, Expr::binary(Op::kMul, Expr::variable(0), Expr::variable(1)),
      Expr::constant(5.0));
  const auto program = Program::compile(expr, 2);
  EXPECT_EQ(program.size(), 5u);
  EXPECT_EQ(program.n_constants(), 1u);
  EXPECT_DOUBLE_EQ(program.constant(0), 5.0);
  // Fused operands: mul reads both variable columns directly, div reads
  // the constant immediate — only the running result needs a column.
  EXPECT_EQ(program.stack_need(), 1u);

  EvalScratch scratch;
  const std::vector<double> vars{241.0, 16.0};
  EXPECT_EQ(bits(program.eval_scalar(vars, scratch)),
            bits(expr.eval(vars)));
}

TEST(Program, BareLeafProgramsEvaluate) {
  // A single-node tree compiles to zero instructions; the result operand
  // points straight at the variable column / constant pool.
  EvalScratch scratch;
  const auto constant = Program::compile(Expr::constant(2.5), 1);
  EXPECT_EQ(bits(constant.eval_scalar({}, scratch)), bits(2.5));

  const auto var = Program::compile(Expr::variable(0), 1);
  const std::vector<std::vector<double>> rows{{7.0}, {-0.0}};
  const auto matrix = SampleMatrix::from_rows(rows, 1);
  var.eval_batch(matrix, scratch);
  EXPECT_EQ(bits(scratch.predictions[0]), bits(7.0));
  EXPECT_EQ(bits(scratch.predictions[1]), bits(-0.0));
  constant.eval_batch(matrix, scratch);
  EXPECT_EQ(bits(scratch.predictions[0]), bits(2.5));
  EXPECT_EQ(bits(scratch.predictions[1]), bits(2.5));
}

TEST(Program, RejectsOutOfRangeVariable) {
  const auto expr = Expr::binary(Op::kAdd, Expr::variable(0),
                                 Expr::variable(5));
  EXPECT_THROW(Program::compile(expr, 2), std::invalid_argument);
  EXPECT_NO_THROW(Program::compile(expr, 6));
}

TEST(Expr, EvalThrowsOnOutOfRangeVariable) {
  const auto expr = Expr::variable(3);
  const std::vector<double> vars{1.0, 2.0};
  EXPECT_THROW(expr.eval(vars), std::out_of_range);
}

TEST(Program, StructuralKeyDistinguishesShapesAndConstants) {
  const auto a = Expr::binary(Op::kAdd, Expr::variable(0),
                              Expr::constant(1.0));
  const auto b = Expr::binary(Op::kAdd, Expr::variable(0),
                              Expr::constant(2.0));
  const auto c = Expr::binary(Op::kSub, Expr::variable(0),
                              Expr::constant(1.0));
  std::string ka, kb, kc, ka2;
  Program::compile(a, 1).structural_key(ka);
  Program::compile(b, 1).structural_key(kb);
  Program::compile(c, 1).structural_key(kc);
  Program::compile(a, 1).structural_key(ka2);
  EXPECT_EQ(ka, ka2);
  EXPECT_NE(ka, kb);  // same shape, different constant bits
  EXPECT_NE(ka, kc);  // same operands, different op
}

TEST(Program, DifferentialFuzzTreeVsTapeBitIdentical) {
  // ≥1000 random expressions × random inputs: scalar-tape, batched
  // scalar-kernel, and batched SIMD-kernel execution must all reproduce
  // the recursive walker's doubles bit for bit — protected-operator
  // thresholds, NaN, and ±inf lanes included.
  util::Rng rng(0xD1FF);
  EvalScratch scratch;
  std::size_t checked = 0;
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int trial = 0; trial < 1200; ++trial) {
    const std::size_t n_vars = 1 + rng.uniform_int(0, 1);
    const int depth = static_cast<int>(rng.uniform_int(1, 5));
    const auto expr = random_expr(rng, n_vars, depth, rng.chance(0.5));
    const auto program = Program::compile(expr, n_vars);
    ASSERT_EQ(program.size(), expr.size());

    // A batch per expression, spanning sign changes, the protected-op
    // thresholds, and non-finite lanes (every SIMD lane of a 12-sample
    // batch sees a mix of edge and ordinary values).
    std::vector<std::vector<double>> rows;
    for (int s = 0; s < 12; ++s) {
      std::vector<double> row(n_vars);
      for (auto& v : row) {
        const double roll = rng.uniform();
        v = roll < 0.08   ? 0.0
            : roll < 0.16 ? rng.uniform(-1e-9, 1e-9)
            : roll < 0.20 ? nan
            : roll < 0.24 ? (rng.chance(0.5) ? inf : -inf)
                          : rng.uniform(-300.0, 300.0);
      }
      rows.push_back(std::move(row));
    }
    const auto matrix = SampleMatrix::from_rows(rows, n_vars);
    // Equality is bitwise except when both sides are NaN: which of two
    // NaN operands an x86 arithmetic instruction propagates depends on
    // the operand order the compiler happened to emit, and GCC can even
    // commute the auto-vectorized main lanes and the remainder lanes of
    // the *same* scalar-kernel loop differently — so walker, scalar
    // tape, and SIMD tape can legitimately return NaNs of different
    // sign/payload. Every NaN scores the same fitness penalty, so
    // signatures are unaffected; non-NaN values stay strictly bitwise
    // everywhere (the per-op kernel test below keeps strict equality on
    // its single-NaN operand mixes).
    const auto tree_matches = [](double want, double got) {
      return bits(want) == bits(got) ||
             (std::isnan(want) && std::isnan(got));
    };
    std::vector<double> reference(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      reference[i] = expr.eval(rows[i]);
      EXPECT_TRUE(
          tree_matches(reference[i], program.eval_scalar(rows[i], scratch)))
          << "trial " << trial << " sample " << i;
    }
    std::vector<double> scalar_tape(rows.size());
    for (const bool simd : {false, true}) {
      if (simd && !simd_supported()) continue;
      SimdGuard guard(simd);
      program.eval_batch(matrix, scratch);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_TRUE(tree_matches(reference[i], scratch.predictions[i]))
            << "trial " << trial << " sample " << i
            << (simd ? " (simd)" : " (scalar)");
        if (!simd) {
          scalar_tape[i] = scratch.predictions[i];
        } else {
          EXPECT_TRUE(tree_matches(scalar_tape[i], scratch.predictions[i]))
              << "scalar vs simd tape, trial " << trial << " sample " << i;
        }
        ++checked;
      }
    }
  }
  EXPECT_GE(checked, 1000u * 12u);
}

TEST(Kernels, SimdMatchesScalarPerOpIncludingEdgeLanes) {
  // Direct per-op kernel equality across every loop shape and awkward
  // length (SIMD main blocks, 4-lane remainder, scalar tail), on operand
  // mixes saturated with non-finite and threshold values.
  if (!simd_supported()) {
    GTEST_SKIP() << "no AVX2 kernel table compiled/supported here";
  }
  const KernelTable& scalar = scalar_kernels();
  const KernelTable& simd = *avx2_kernels();
  const double edges[] = {0.0,
                          -0.0,
                          1e-10,
                          -1e-10,
                          9.9e-10,
                          -9.9e-10,
                          1e-9,
                          -1e-9,
                          1.0,
                          -1.0,
                          300.0,
                          -300.0,
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::min(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::quiet_NaN()};
  constexpr std::size_t kNEdges = std::size(edges);
  const Op all_ops[] = {Op::kAdd, Op::kSub, Op::kMul, Op::kDiv,
                        Op::kMin, Op::kMax, Op::kSqrt, Op::kLog,
                        Op::kAbs, Op::kNeg, Op::kSin, Op::kCos,
                        Op::kTan, Op::kInv};
  util::Rng rng(0x51D);
  for (const std::size_t n : {1u, 3u, 4u, 7u, 8u, 9u, 16u, 33u, 100u}) {
    std::vector<double> a(n), b(n), got(n), want(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.chance(0.5) ? edges[rng.uniform_int(0, kNEdges - 1)]
                             : rng.uniform(-500.0, 500.0);
      b[i] = rng.chance(0.5) ? edges[rng.uniform_int(0, kNEdges - 1)]
                             : rng.uniform(-500.0, 500.0);
    }
    const double k = edges[rng.uniform_int(0, kNEdges - 1)];
    for (const Op op : all_ops) {
      if (arity(op) == 1) {
        scalar.unary(op, want.data(), a.data(), n);
        simd.unary(op, got.data(), a.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(bits(want[i]), bits(got[i]))
              << "unary op " << static_cast<int>(op) << " n=" << n
              << " lane " << i << " x=" << a[i];
        }
        continue;
      }
      scalar.binary(op, want.data(), a.data(), b.data(), n);
      simd.binary(op, got.data(), a.data(), b.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(bits(want[i]), bits(got[i]))
            << "binary op " << static_cast<int>(op) << " n=" << n
            << " lane " << i << " a=" << a[i] << " b=" << b[i];
      }
      scalar.binary_ak(op, want.data(), a.data(), k, n);
      simd.binary_ak(op, got.data(), a.data(), k, n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(bits(want[i]), bits(got[i]))
            << "binary_ak op " << static_cast<int>(op) << " n=" << n
            << " lane " << i << " a=" << a[i] << " k=" << k;
      }
      scalar.binary_kb(op, want.data(), k, b.data(), n);
      simd.binary_kb(op, got.data(), k, b.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(bits(want[i]), bits(got[i]))
            << "binary_kb op " << static_cast<int>(op) << " n=" << n
            << " lane " << i << " k=" << k << " b=" << b[i];
      }
    }
  }
}

TEST(Kernels, InPlaceColumnUpdateIsSafe) {
  // The tape reuses stack slots: dst may be exactly the operand column.
  // Both tables must handle the exact-aliasing case.
  for (const bool simd : {false, true}) {
    if (simd && !simd_supported()) continue;
    const KernelTable& table = simd ? *avx2_kernels() : scalar_kernels();
    std::vector<double> col(37);
    for (std::size_t i = 0; i < col.size(); ++i) {
      col[i] = static_cast<double>(i) - 18.0;
    }
    std::vector<double> expected(col.size());
    for (std::size_t i = 0; i < col.size(); ++i) {
      expected[i] = apply_binary(Op::kMul, col[i], col[i]);
    }
    table.binary(Op::kMul, col.data(), col.data(), col.data(), col.size());
    for (std::size_t i = 0; i < col.size(); ++i) {
      EXPECT_EQ(bits(expected[i]), bits(col[i])) << "lane " << i;
    }
  }
}

TEST(Program, DeepChainNeverTouchesTheCStack) {
  // 200k unary nodes: recursive clone/size/teardown would overflow the
  // stack; every structural operation must be iterative.
  constexpr int kDepth = 200000;
  Expr expr = Expr::constant(1.5);
  for (int i = 0; i < kDepth; ++i) {
    expr = Expr::unary(Op::kNeg, std::move(expr));
  }
  EXPECT_EQ(expr.size(), static_cast<std::size_t>(kDepth) + 1);

  Expr copy = expr;  // iterative clone
  EXPECT_EQ(copy.size(), expr.size());

  const auto program = Program::compile(expr, 1);  // iterative lowering
  EXPECT_EQ(program.size(), static_cast<std::size_t>(kDepth) + 1);
  EXPECT_EQ(program.stack_need(), 1u);
  EvalScratch scratch;
  EXPECT_DOUBLE_EQ(program.eval_scalar({}, scratch), 1.5);
  // Iterative ~Node runs when expr/copy leave scope.
}

TEST(Program, RandomExprDepthRequestIsCapped) {
  util::Rng rng(7);
  const auto grown = random_expr(rng, 2, 1 << 30, false);
  EXPECT_LE(grown.depth(), kMaxGrowDepth + 1);
  const auto full = random_expr(rng, 2, 4096, true);
  EXPECT_LE(full.depth(), kMaxFullDepth + 1);
}

TEST(FitnessCache, HitReturnsInsertedValueAndCounts) {
  FitnessCache cache(64);
  EXPECT_FALSE(cache.lookup("alpha").has_value());
  cache.insert("alpha", 0.25);
  const auto hit = cache.lookup("alpha");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 0.25);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(FitnessCache, BoundedByEpochEviction) {
  FitnessCache cache(16);  // tiny: one entry per shard
  for (int i = 0; i < 1000; ++i) {
    cache.insert("key" + std::to_string(i), static_cast<double>(i));
  }
  EXPECT_GT(cache.evictions(), 0u);
}

// --- Tape vs tree through the full engine -----------------------------------

correlate::Dataset synthetic_dataset(std::uint64_t seed, std::size_t n_vars) {
  correlate::Dataset dataset;
  dataset.n_vars = n_vars;
  util::Rng rng(seed);
  for (int i = 0; i < 48; ++i) {
    correlate::DataPoint p;
    p.xs.resize(n_vars);
    for (auto& x : p.xs) x = rng.uniform(0.0, 255.0);
    p.y = n_vars == 1 ? 0.75 * p.xs[0] - 40.0
                      : p.xs[0] * p.xs[1] / 5.0;
    dataset.points.push_back(std::move(p));
  }
  return dataset;
}

TEST(TapeEngine, InferMatchesTreeEngineBitwiseAtEveryThreadCount) {
  // The acceptance gate in miniature: for several datasets and 1/2/8
  // worker threads, tape+cache inference must return exactly the result
  // the legacy tree walker returns — formula string, fitness bits,
  // generation count, everything report_signature folds in.
  for (const std::uint64_t seed : {11ull, 12ull}) {
    for (const std::size_t n_vars : {1u, 2u}) {
      const auto dataset = synthetic_dataset(seed, n_vars);
      GpConfig tree;
      tree.population = 96;
      tree.max_generations = 12;
      tree.use_tape = false;
      const auto reference = infer_formula(dataset, tree);
      ASSERT_TRUE(reference.has_value());

      for (const std::size_t threads : {1u, 2u, 8u}) {
        GpConfig tape = tree;
        tape.use_tape = true;
        tape.n_threads = threads;
        const auto result = infer_formula(dataset, tape);
        ASSERT_TRUE(result.has_value());
        EXPECT_EQ(result->formula, reference->formula)
            << n_vars << " vars, " << threads << " threads";
        EXPECT_EQ(bits(result->fitness), bits(reference->fitness));
        EXPECT_EQ(result->generations_run, reference->generations_run);
        EXPECT_EQ(result->converged, reference->converged);
        EXPECT_EQ(result->best.to_string(n_vars),
                  reference->best.to_string(n_vars));
      }
    }
  }
}

TEST(TapeEngine, SimdAndScalarTapeInferBitIdentical) {
  // The other half of the acceptance gate: with the AVX2 kernel table
  // forced off and on, tape inference must produce the same
  // report-signature inputs bit for bit, at several thread counts.
  if (!simd_supported()) {
    GTEST_SKIP() << "no AVX2 kernel table compiled/supported here";
  }
  for (const std::size_t n_vars : {1u, 2u}) {
    const auto dataset = synthetic_dataset(44, n_vars);
    GpConfig config;
    config.population = 96;
    config.max_generations = 12;

    std::optional<GpResult> reference;
    {
      SimdGuard guard(false);
      reference = infer_formula(dataset, config);
    }
    ASSERT_TRUE(reference.has_value());

    for (const std::size_t threads : {1u, 2u, 8u}) {
      SimdGuard guard(true);
      config.n_threads = threads;
      const auto result = infer_formula(dataset, config);
      ASSERT_TRUE(result.has_value());
      EXPECT_EQ(result->formula, reference->formula)
          << n_vars << " vars, " << threads << " threads";
      EXPECT_EQ(bits(result->fitness), bits(reference->fitness));
      EXPECT_EQ(result->generations_run, reference->generations_run);
      EXPECT_EQ(result->converged, reference->converged);
    }
  }
}

TEST(TapeEngine, CacheOnAndOffAgreeBitwise) {
  const auto dataset = synthetic_dataset(21, 2);
  GpConfig with_cache;
  with_cache.population = 96;
  with_cache.max_generations = 12;
  with_cache.fitness_cache = true;
  GpConfig without_cache = with_cache;
  without_cache.fitness_cache = false;

  const auto a = infer_formula(dataset, with_cache);
  const auto b = infer_formula(dataset, without_cache);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->formula, b->formula);
  EXPECT_EQ(bits(a->fitness), bits(b->fitness));
  EXPECT_EQ(a->generations_run, b->generations_run);

  // The cache actually worked: offspring reproduce known shapes, and
  // every avoided rescore is one fewer evaluation. (evaluations also
  // counts constant-tuning line searches, which bypass the cache, so
  // misses are a lower bound, not an exact match.)
  EXPECT_GT(a->timings.cache_hits, 0u);
  EXPECT_LE(a->timings.cache_misses, a->timings.evaluations);
  EXPECT_LT(a->timings.evaluations, b->timings.evaluations);
  EXPECT_EQ(b->timings.cache_hits, 0u);
}

TEST(TapeEngine, CacheDeterministicAcrossThreadCounts) {
  const auto dataset = synthetic_dataset(33, 1);
  GpConfig config;
  config.population = 96;
  config.max_generations = 12;
  std::string reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    config.n_threads = threads;
    const auto result = infer_formula(dataset, config);
    ASSERT_TRUE(result.has_value());
    const std::string signature =
        result->formula + "|" + std::to_string(bits(result->fitness)) + "|" +
        std::to_string(result->generations_run);
    if (reference.empty()) {
      reference = signature;
    } else {
      EXPECT_EQ(signature, reference) << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace dpr::gp
