#include <gtest/gtest.h>

#include <cmath>

#include "gp/batch.hpp"
#include "gp/engine.hpp"
#include "gp/expr.hpp"
#include "gp/scaling.hpp"

namespace dpr::gp {
namespace {

TEST(Expr, EvalArithmetic) {
  // (X0 * X1) / 5 — the paper's KWP RPM formula shape.
  auto expr = Expr::binary(
      Op::kDiv, Expr::binary(Op::kMul, Expr::variable(0), Expr::variable(1)),
      Expr::constant(5.0));
  const std::vector<double> vars{241.0, 16.0};
  EXPECT_DOUBLE_EQ(expr.eval(vars), 771.2);
  EXPECT_EQ(expr.size(), 5u);
}

TEST(Expr, ProtectedDivision) {
  auto expr = Expr::binary(Op::kDiv, Expr::constant(1.0),
                           Expr::constant(0.0));
  EXPECT_DOUBLE_EQ(expr.eval({}), 1.0);
}

TEST(Expr, ProtectedLogAndSqrt) {
  auto log_expr = Expr::unary(Op::kLog, Expr::constant(-2.0));
  EXPECT_DOUBLE_EQ(log_expr.eval({}), std::log(2.0));
  auto sqrt_expr = Expr::unary(Op::kSqrt, Expr::constant(-4.0));
  EXPECT_DOUBLE_EQ(sqrt_expr.eval({}), 2.0);
}

TEST(Expr, AllFourteenFunctionsEvaluateFinite) {
  const Op ops[] = {Op::kAdd, Op::kSub, Op::kMul, Op::kDiv, Op::kMin,
                    Op::kMax, Op::kSqrt, Op::kLog, Op::kAbs, Op::kNeg,
                    Op::kSin, Op::kCos, Op::kTan, Op::kInv};
  for (Op op : ops) {
    Expr expr = arity(op) == 2
                    ? Expr::binary(op, Expr::variable(0), Expr::constant(2.0))
                    : Expr::unary(op, Expr::variable(0));
    for (double x : {-5.0, 0.0, 0.5, 100.0}) {
      const std::vector<double> vars{x};
      EXPECT_TRUE(std::isfinite(expr.eval(vars)))
          << "op " << static_cast<int>(op) << " at " << x;
    }
  }
}

TEST(Expr, SimplifyFoldsConstants) {
  auto expr = Expr::binary(Op::kAdd, Expr::constant(2.0),
                           Expr::constant(3.0));
  expr.simplify();
  EXPECT_EQ(expr.size(), 1u);
  EXPECT_DOUBLE_EQ(expr.eval({}), 5.0);
}

TEST(Expr, SimplifyRemovesIdentities) {
  auto expr = Expr::binary(
      Op::kMul, Expr::constant(1.0),
      Expr::binary(Op::kAdd, Expr::variable(0), Expr::constant(0.0)));
  expr.simplify();
  EXPECT_EQ(expr.size(), 1u);
  EXPECT_EQ(expr.to_string(1), "X");
}

TEST(Expr, ToStringVariableNaming) {
  auto expr = Expr::binary(Op::kAdd, Expr::variable(0), Expr::variable(1));
  EXPECT_EQ(expr.to_string(2), "(X0 + X1)");
  auto single = Expr::variable(0);
  EXPECT_EQ(single.to_string(1), "X");
}

TEST(Expr, CopyIsDeep) {
  auto a = Expr::binary(Op::kAdd, Expr::variable(0), Expr::constant(1.0));
  Expr b = a;
  b.constant_nodes()[0]->value = 99.0;
  const std::vector<double> vars{0.0};
  EXPECT_DOUBLE_EQ(a.eval(vars), 1.0);
  EXPECT_DOUBLE_EQ(b.eval(vars), 99.0);
}

TEST(Expr, RandomExprRespectsDepthBound) {
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    auto expr = random_expr(rng, 2, 3, true);
    EXPECT_LE(expr.depth(), 4);
  }
}

TEST(Scaling, Table2ReduceLargeValues) {
  // Most values in 10^3..10^4 -> divide by 10^3 (Table 2 row 2).
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) values.push_back(2000.0 + i * 100);
  const auto scale = choose_scale(values, true);
  EXPECT_DOUBLE_EQ(scale.factor, 1000.0);
}

TEST(Scaling, Table2EnlargeSmallValues) {
  std::vector<double> values;
  for (int i = 1; i <= 20; ++i) values.push_back(0.02 + i * 0.001);
  const auto scale = choose_scale(values, true);
  EXPECT_DOUBLE_EQ(scale.factor, 0.01);  // multiply by 100
}

TEST(Scaling, IdentityInsideTargetBand) {
  std::vector<double> values{1.5, 2.0, 5.0, 9.9};
  EXPECT_TRUE(choose_scale(values, true).identity());
}

TEST(Scaling, XSeriesNeverEnlarged) {
  std::vector<double> values{0.01, 0.02, 0.03, 0.05};
  EXPECT_TRUE(choose_scale(values, false).identity());
}

TEST(Scaling, SymbolSubstitution) {
  SeriesScale reduce{1000.0};
  EXPECT_EQ(scaled_symbol("Y", reduce), "Y/1000");
  SeriesScale enlarge{0.01};
  EXPECT_EQ(scaled_symbol("Y", enlarge), "Y*100");
  EXPECT_EQ(scaled_symbol("X", SeriesScale{}), "X");
}

// --- End-to-end inference on synthetic datasets ------------------------------

correlate::Dataset make_dataset(
    std::size_t n_vars, const std::function<double(double, double)>& truth,
    double x0_lo, double x0_hi, std::size_t n = 40) {
  correlate::Dataset dataset;
  dataset.n_vars = n_vars;
  util::Rng rng(99);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(x0_lo, x0_hi);
    const double x1 = rng.uniform(0.0, 255.0);
    correlate::DataPoint p;
    p.xs = n_vars == 1 ? std::vector<double>{x0}
                       : std::vector<double>{x0, x1};
    p.y = truth(x0, x1);
    dataset.points.push_back(std::move(p));
  }
  return dataset;
}

GpConfig fast_config() {
  GpConfig config;
  config.population = 128;
  config.max_generations = 20;
  return config;
}

TEST(Infer, RecoversIdentity) {
  const auto dataset =
      make_dataset(1, [](double x, double) { return x; }, 0, 255);
  const auto result = infer_formula(dataset, fast_config());
  ASSERT_TRUE(result.has_value());
  const auto truth = [](std::span<const double> xs) { return xs[0]; };
  EXPECT_LT(mean_relative_error(*result, dataset, truth), 0.02);
}

TEST(Infer, RecoversAffineWithOffset) {
  const auto dataset = make_dataset(
      1, [](double x, double) { return 0.75 * x - 48.0; }, 0, 255);
  const auto result = infer_formula(dataset, fast_config());
  ASSERT_TRUE(result.has_value());
  const auto truth = [](std::span<const double> xs) {
    return 0.75 * xs[0] - 48.0;
  };
  EXPECT_LT(mean_relative_error(*result, dataset, truth), 0.02);
}

TEST(Infer, RecoversProductFormula) {
  // The paper's KWP RPM formula: Y = X0*X1/5.
  const auto dataset = make_dataset(
      2, [](double x0, double x1) { return x0 * x1 / 5.0; }, 30, 250);
  const auto result = infer_formula(dataset, fast_config());
  ASSERT_TRUE(result.has_value());
  const auto truth = [](std::span<const double> xs) {
    return xs[0] * xs[1] / 5.0;
  };
  EXPECT_LT(mean_relative_error(*result, dataset, truth), 0.02);
}

TEST(Infer, RecoversQuadratic) {
  const auto dataset = make_dataset(
      1, [](double x, double) { return 0.004 * x * x; }, 10, 250);
  const auto result = infer_formula(dataset, fast_config());
  ASSERT_TRUE(result.has_value());
  const auto truth = [](std::span<const double> xs) {
    return 0.004 * xs[0] * xs[0];
  };
  EXPECT_LT(mean_relative_error(*result, dataset, truth), 0.02);
}

TEST(Infer, RobustToOutliers) {
  auto dataset =
      make_dataset(1, [](double x, double) { return 2.0 * x; }, 0, 255);
  // Corrupt ~7% of targets with decimal-drop style outliers.
  dataset.points[3].y *= 10.0;
  dataset.points[17].y *= 100.0;
  dataset.points[29].y /= 10.0;
  const auto result = infer_formula(dataset, fast_config());
  ASSERT_TRUE(result.has_value());
  const auto truth = [](std::span<const double> xs) { return 2.0 * xs[0]; };
  EXPECT_LT(mean_relative_error(*result, dataset, truth), 0.02);
}

TEST(Infer, ScalingSubstitutedIntoFormula) {
  // Targets in the thousands: Table 2 post-processing must appear.
  const auto dataset = make_dataset(
      1, [](double x, double) { return 64.0 * x + 32.0; }, 20, 250);
  const auto result = infer_formula(dataset, fast_config());
  ASSERT_TRUE(result.has_value());
  EXPECT_NE(result->formula.find("Y/"), std::string::npos);
}

TEST(Infer, TooFewPointsRejected) {
  correlate::Dataset dataset;
  dataset.n_vars = 1;
  for (int i = 0; i < 3; ++i) {
    dataset.points.push_back(correlate::DataPoint{{double(i)}, double(i)});
  }
  EXPECT_EQ(infer_formula(dataset, fast_config()), std::nullopt);
}

TEST(Infer, DeterministicForFixedSeed) {
  const auto dataset = make_dataset(
      1, [](double x, double) { return 0.5 * x + 3.0; }, 0, 255);
  const auto a = infer_formula(dataset, fast_config());
  const auto b = infer_formula(dataset, fast_config());
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->formula, b->formula);
}

TEST(Infer, IdenticalResultForEveryThreadCount) {
  // The deterministic-replay contract: breeding is decomposed into fixed
  // chunks with per-chunk forked RNG streams, so the evolved population —
  // and therefore the whole GpResult — is bit-identical no matter how
  // many workers execute it.
  const auto dataset = make_dataset(
      2, [](double x0, double x1) { return 0.4 * x0 + 0.1 * x1 + 7.0; }, 5,
      250);
  GpConfig serial = fast_config();
  serial.n_threads = 1;
  const auto a = infer_formula(dataset, serial);
  GpConfig parallel = fast_config();
  parallel.n_threads = 4;
  const auto b = infer_formula(dataset, parallel);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->formula, b->formula);
  EXPECT_EQ(a->fitness, b->fitness);  // bitwise, not approximate
  EXPECT_EQ(a->generations_run, b->generations_run);
  EXPECT_EQ(a->converged, b->converged);
  EXPECT_EQ(a->best.to_string(2), b->best.to_string(2));
}

TEST(Infer, TimingsAccountForTheRun) {
  const auto dataset = make_dataset(
      1, [](double x, double) { return 3.0 * x + 11.0; }, 0, 255);
  const auto result = infer_formula(dataset, fast_config());
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->timings.total_s, 0.0);
  EXPECT_GT(result->timings.evaluations, 0u);
  // Initial scoring alone touches the whole population once; with the
  // structural cache on, duplicate shapes resolve as hits instead of
  // fresh evaluations, so count both.
  EXPECT_GE(result->timings.evaluations + result->timings.cache_hits,
            fast_config().population);
  EXPECT_GE(result->timings.scoring_s, 0.0);
}

TEST(Batch, RunnerMatchesSerialInference) {
  const auto d0 = make_dataset(
      1, [](double x, double) { return 1.5 * x; }, 0, 255);
  const auto d1 = make_dataset(
      1, [](double x, double) { return 0.25 * x + 9.0; }, 0, 255);
  const auto d2 = make_dataset(
      2, [](double x0, double x1) { return x0 * x1 / 5.0; }, 30, 250);

  std::vector<BatchJob> jobs;
  for (const auto* d : {&d0, &d1, &d2}) {
    BatchJob job;
    job.dataset = d;
    job.config = fast_config();
    job.config.seed ^= jobs.size() * 0x1234567ULL;
    jobs.push_back(job);
  }
  const auto serial = BatchRunner(1).run(jobs);
  const auto parallel = BatchRunner(4).run(jobs);
  ASSERT_EQ(serial.size(), 3u);
  ASSERT_EQ(parallel.size(), 3u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(serial[i].has_value());
    ASSERT_TRUE(parallel[i].has_value());
    EXPECT_EQ(serial[i]->formula, parallel[i]->formula) << "job " << i;
    EXPECT_EQ(serial[i]->fitness, parallel[i]->fitness) << "job " << i;
  }
}

TEST(Infer, StopsEarlyWhenConverged) {
  const auto dataset =
      make_dataset(1, [](double x, double) { return x; }, 0, 255);
  const auto result = infer_formula(dataset, fast_config());
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->converged);
  EXPECT_LT(result->generations_run, 20u);
}

TEST(Infer, PredictAppliesScalesEndToEnd) {
  const auto dataset = make_dataset(
      1, [](double x, double) { return 100.0 * x; }, 10, 250);
  const auto result = infer_formula(dataset, fast_config());
  ASSERT_TRUE(result.has_value());
  const std::vector<double> x{100.0};
  EXPECT_NEAR(result->predict(x), 10000.0, 200.0);
}

class AblationScaling : public ::testing::TestWithParam<bool> {};

TEST_P(AblationScaling, ExtremeTargetsNeedTable2) {
  // Y in the 10^4 range; without scaling GP tends to flatline (§3.5
  // step 3's motivating failure).
  const auto dataset = make_dataset(
      1, [](double x, double) { return 400.0 * x + 1000.0; }, 20, 250);
  GpConfig config = fast_config();
  config.use_scaling = GetParam();
  config.seed_least_squares = false;  // isolate the scaling effect
  const auto result = infer_formula(dataset, config);
  ASSERT_TRUE(result.has_value());
  const auto truth = [](std::span<const double> xs) {
    return 400.0 * xs[0] + 1000.0;
  };
  const double err = mean_relative_error(*result, dataset, truth);
  if (GetParam()) {
    EXPECT_LT(err, 0.05);
  }
  // (The unscaled variant is exercised for crash-freedom; its accuracy
  // is measured by bench_ablation_scaling.)
}

INSTANTIATE_TEST_SUITE_P(OnOff, AblationScaling, ::testing::Bool());

}  // namespace
}  // namespace dpr::gp

namespace dpr::gp {
namespace {

TEST(Limitations, SeedKeyStyleTransformNotRecovered) {
  // §6 limitation (2): DP-Reverser's GP covers arithmetic/transcendental
  // formulas, not bitwise seed-key transforms. Document the boundary.
  correlate::Dataset dataset;
  dataset.n_vars = 1;
  util::Rng rng(31);
  for (int i = 0; i < 40; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.uniform_int(0, 255));
    const std::uint32_t y = ((x ^ 0xA5u) << 3 | (x ^ 0xA5u) >> 5) & 0xFF;
    dataset.points.push_back(
        correlate::DataPoint{{static_cast<double>(x)},
                             static_cast<double>(y)});
  }
  GpConfig config;
  config.population = 128;
  config.max_generations = 20;
  const auto result = infer_formula(dataset, config);
  ASSERT_TRUE(result.has_value());
  const auto truth = [](std::span<const double> xs) {
    const auto x = static_cast<std::uint32_t>(xs[0]);
    return static_cast<double>(((x ^ 0xA5u) << 3 | (x ^ 0xA5u) >> 5) & 0xFF);
  };
  EXPECT_GT(max_relative_error(*result, dataset, truth), 0.08);
}

TEST(Property, RandomExpressionsNeverProduceNonFiniteFitness) {
  // Protected operators guarantee finite evaluation everywhere.
  util::Rng rng(37);
  for (int trial = 0; trial < 300; ++trial) {
    auto expr = random_expr(rng, 2, 4, rng.chance(0.5));
    const std::vector<double> vars{rng.uniform(-1e4, 1e4),
                                   rng.uniform(-1e4, 1e4)};
    const double value = expr.eval(vars);
    // Division/log/inv are protected; only tan can reach huge-but-finite.
    EXPECT_FALSE(std::isnan(value));
  }
}

TEST(Property, SimplifyPreservesSemantics) {
  util::Rng rng(41);
  for (int trial = 0; trial < 200; ++trial) {
    auto expr = random_expr(rng, 2, 4, false);
    Expr simplified = expr;
    simplified.simplify();
    for (int probe = 0; probe < 5; ++probe) {
      const std::vector<double> vars{rng.uniform(0.0, 255.0),
                                     rng.uniform(0.0, 255.0)};
      const double a = expr.eval(vars);
      const double b = simplified.eval(vars);
      if (std::isfinite(a) && std::isfinite(b)) {
        EXPECT_NEAR(a, b, 1e-6 * std::max(1.0, std::abs(a)));
      }
    }
  }
}

}  // namespace
}  // namespace dpr::gp
