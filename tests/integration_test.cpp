// End-to-end pipeline tests: the full Fig. 6 loop on simulated vehicles.
// These are slower than unit tests but cover the paths every experiment
// relies on; they use short capture windows to stay fast.

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/obd_experiment.hpp"

namespace dpr::core {
namespace {

CampaignOptions fast_options() {
  CampaignOptions options;
  options.live_window = 10 * util::kSecond;
  options.gp.population = 128;
  options.gp.max_generations = 20;
  return options;
}

TEST(Campaign, UdsCarEndToEnd) {
  Campaign campaign(vehicle::CarId::kA, fast_options());
  campaign.collect();
  EXPECT_GT(campaign.capture().size(), 200u);
  EXPECT_GT(campaign.video().frames.size(), 50u);
  campaign.analyze();

  const auto& report = campaign.report();
  EXPECT_EQ(report.car_label, "Car A");
  // All 28 formula signals recovered and a strong majority correct.
  EXPECT_EQ(report.formula_signals(), 28u);
  EXPECT_GE(report.gp_correct(), 25u);
  // ISO-TP traffic contains single frames, multi-frames and flow control.
  EXPECT_GT(report.census.single_frames, 0u);
  EXPECT_GT(report.census.multi_frames(), 0u);
  EXPECT_GT(report.census.flow_control_frames, 0u);
  // ECRs recovered with the 3-message pattern.
  EXPECT_EQ(report.ecrs.size(), 11u);
  for (const auto& ecr : report.ecrs) {
    EXPECT_TRUE(ecr.three_message_pattern);
    EXPECT_TRUE(ecr.matches_truth);
  }
}

TEST(Campaign, KwpCarOverVwTp) {
  Campaign campaign(vehicle::CarId::kB, fast_options());
  campaign.collect();
  campaign.analyze();
  const auto& report = campaign.report();
  EXPECT_EQ(report.formula_signals(), 8u);
  EXPECT_GE(report.gp_correct(), 7u);
  // VW TP 2.0 traffic: data frames plus screened-out control frames.
  EXPECT_GT(report.census.vwtp_data_more + report.census.vwtp_data_last,
            0u);
  EXPECT_GT(report.census.vwtp_control, 0u);
}

TEST(Campaign, BmwFramingCar) {
  Campaign campaign(vehicle::CarId::kE, fast_options());
  campaign.collect();
  campaign.analyze();
  const auto& report = campaign.report();
  EXPECT_EQ(report.formula_signals(), 5u);
  EXPECT_GE(report.gp_correct(), 4u);
  EXPECT_EQ(report.ecrs.size(), 3u);
  for (const auto& ecr : report.ecrs) {
    EXPECT_FALSE(ecr.is_uds);  // service 0x30 per Table 11
    EXPECT_TRUE(ecr.three_message_pattern);
  }
}

TEST(Campaign, EnumSignalsClassifiedWithoutFormulas) {
  Campaign campaign(vehicle::CarId::kM, fast_options());  // 4 + 14 enums
  campaign.collect();
  campaign.analyze();
  const auto& report = campaign.report();
  EXPECT_EQ(report.enum_signals(), 14u);
  for (const auto& signal : report.signals) {
    if (signal.is_enum) {
      EXPECT_TRUE(signal.truth_is_enum) << signal.semantic_name;
    }
  }
}

TEST(Campaign, SemanticNamesRecoveredFromUi) {
  Campaign campaign(vehicle::CarId::kA, fast_options());
  campaign.collect();
  campaign.analyze();
  // Every finding carries a non-empty name recovered via OCR; the vast
  // majority must match a catalog signal name exactly.
  std::size_t exact = 0;
  const auto& spec = campaign.vehicle().spec();
  for (const auto& finding : campaign.report().signals) {
    EXPECT_FALSE(finding.semantic_name.empty());
    for (const auto& ecu : spec.ecus) {
      for (const auto& sig : ecu.uds_signals) {
        if (sig.name == finding.semantic_name && sig.did == finding.did) {
          ++exact;
        }
      }
    }
  }
  EXPECT_GE(exact, campaign.report().signals.size() * 3 / 4);
}

TEST(Campaign, AblationDisablingFilterHurtsBaselines) {
  CampaignOptions with = fast_options();
  CampaignOptions without = fast_options();
  without.two_stage_filter = false;
  Campaign filtered(vehicle::CarId::kC, with);     // LAUNCH X431: noisy OCR
  filtered.collect();
  filtered.analyze();
  Campaign unfiltered(vehicle::CarId::kC, without);
  unfiltered.collect();
  unfiltered.analyze();
  // GP with trimmed fitness tolerates the unfiltered data; least squares
  // should not improve without the filter.
  EXPECT_GE(filtered.report().linear_correct() + 1,
            unfiltered.report().linear_correct());
}

TEST(ObdExperiment, RecoversStandardFormulas) {
  ObdExperimentOptions options;
  options.duration = 15 * util::kSecond;
  options.gp.population = 128;
  options.gp.max_generations = 20;
  const auto report = run_obd_experiment(options);
  EXPECT_GE(report.findings.size(), 7u);
  // The seven Table 5 PIDs must all be recovered correctly.
  std::size_t table5_correct = 0;
  for (const auto& finding : report.findings) {
    for (std::uint8_t pid : {0x11, 0x04, 0x2F, 0x0C, 0x0D, 0x05, 0x0B}) {
      if (finding.pid == pid && finding.correct) ++table5_correct;
    }
  }
  EXPECT_EQ(table5_correct, 7u);
}

TEST(Campaign, AttackReplay) {
  // Table 13: replay a reverse-engineered control message against the
  // running vehicle and verify the component actually triggers.
  Campaign campaign(vehicle::CarId::kN, fast_options());
  campaign.collect();
  campaign.analyze();
  const auto& report = campaign.report();
  ASSERT_FALSE(report.ecrs.empty());
  // Count activations recorded by the actuators during the campaign.
  std::size_t activated = 0;
  for (const auto& ecr : report.ecrs) {
    auto* ecu = campaign.vehicle().find_ecu_with_actuator(ecr.id);
    ASSERT_NE(ecu, nullptr) << "unknown ECR id";
    if (ecu->actuator(ecr.id)->activations() > 0) ++activated;
  }
  EXPECT_EQ(activated, report.ecrs.size());
}

}  // namespace
}  // namespace dpr::core
