#include <gtest/gtest.h>

#include "can/bus.hpp"
#include "isotp/endpoint.hpp"
#include "isotp/isotp.hpp"
#include "util/rng.hpp"

namespace dpr::isotp {
namespace {

can::CanId id(std::uint32_t v) { return can::CanId{v, false}; }

util::Bytes payload_of(std::size_t n) {
  util::Bytes p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint8_t>(i);
  return p;
}

TEST(Classify, AllFrameTypes) {
  EXPECT_EQ(classify(can::CanFrame(0x100, {0x02, 0x01, 0x0C})),
            FrameType::kSingle);
  EXPECT_EQ(classify(can::CanFrame(0x100, {0x10, 0x14, 1, 2, 3, 4, 5, 6})),
            FrameType::kFirst);
  EXPECT_EQ(classify(can::CanFrame(0x100, {0x21, 1, 2, 3, 4, 5, 6, 7})),
            FrameType::kConsecutive);
  EXPECT_EQ(classify(can::CanFrame(0x100, {0x30, 0x00, 0x00})),
            FrameType::kFlowControl);
  EXPECT_EQ(classify(can::CanFrame(0x100, {0x40})), std::nullopt);
  EXPECT_EQ(classify(can::CanFrame(0x100, {})), std::nullopt);
}

TEST(Encode, SingleFrameLayout) {
  const util::Bytes payload{0x22, 0xF4, 0x0D};
  const auto frame = encode_single(id(0x7E0), payload);
  EXPECT_EQ(frame.dlc(), 8);  // padded
  EXPECT_EQ(frame.byte(0), 0x03);
  EXPECT_EQ(frame.byte(1), 0x22);
  EXPECT_EQ(frame.byte(3), 0x0D);
}

TEST(Encode, SingleRejectsOver7) {
  EXPECT_THROW(encode_single(id(0x7E0), payload_of(8)),
               std::invalid_argument);
}

TEST(Encode, FirstFrameCarriesLengthAndSixBytes) {
  const auto payload = payload_of(20);
  const auto frame = encode_first(id(0x7E0), payload);
  EXPECT_EQ(frame.byte(0), 0x10);
  EXPECT_EQ(frame.byte(1), 20);
  EXPECT_EQ(frame.byte(2), 0x00);
  EXPECT_EQ(frame.byte(7), 0x05);
}

TEST(Encode, FirstFrameLengthHighBits) {
  const auto payload = payload_of(0x234);
  const auto frame = encode_first(id(0x7E0), payload);
  EXPECT_EQ(frame.byte(0), 0x12);
  EXPECT_EQ(frame.byte(1), 0x34);
}

TEST(SegmentMessage, ShortPayloadYieldsSingleFrame) {
  const auto frames = segment_message(id(0x7E0), payload_of(7));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(classify(frames[0]), FrameType::kSingle);
}

TEST(SegmentMessage, LongPayloadYieldsFirstPlusConsecutive) {
  const auto frames = segment_message(id(0x7E0), payload_of(20));
  ASSERT_EQ(frames.size(), 3u);  // FF(6) + CF(7) + CF(7)
  EXPECT_EQ(classify(frames[0]), FrameType::kFirst);
  EXPECT_EQ(classify(frames[1]), FrameType::kConsecutive);
  EXPECT_EQ(frames[1].byte(0), 0x21);
  EXPECT_EQ(frames[2].byte(0), 0x22);
}

TEST(SegmentMessage, SequenceNumbersWrapAt16) {
  const auto frames = segment_message(id(0x7E0), payload_of(6 + 7 * 16));
  // CF sequence 1..15, 0, 1.
  EXPECT_EQ(frames[15].byte(0) & 0x0F, 15);
  EXPECT_EQ(frames[16].byte(0) & 0x0F, 0);
}

class ReassemblerRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReassemblerRoundTrip, SegmentsThenReassembles) {
  const auto payload = payload_of(GetParam());
  Reassembler reassembler;
  std::optional<util::Bytes> result;
  for (const auto& frame : segment_message(id(0x7E0), payload)) {
    result = reassembler.feed(frame);
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, payload);
  EXPECT_EQ(reassembler.errors(), 0u);
}

INSTANTIATE_TEST_SUITE_P(PayloadLengths, ReassemblerRoundTrip,
                         ::testing::Values(1, 2, 6, 7, 8, 12, 13, 14, 20,
                                           48, 62, 63, 100, 255, 512,
                                           4095));

TEST(Reassembler, DetectsSequenceMismatch) {
  const auto frames = segment_message(id(0x7E0), payload_of(30));
  Reassembler reassembler;
  reassembler.feed(frames[0]);
  reassembler.feed(frames[2]);  // skip CF #1
  EXPECT_EQ(reassembler.last_error(), Reassembler::Error::kSequenceMismatch);
  EXPECT_EQ(reassembler.errors(), 1u);
}

TEST(Reassembler, UnexpectedConsecutiveIsError) {
  Reassembler reassembler;
  reassembler.feed(can::CanFrame(0x100, {0x21, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(reassembler.last_error(),
            Reassembler::Error::kUnexpectedConsecutive);
}

TEST(Reassembler, FlowControlFramesIgnored) {
  Reassembler reassembler;
  const auto fc = encode_flow_control(id(0x7E8), FlowControl{});
  EXPECT_EQ(reassembler.feed(fc), std::nullopt);
  EXPECT_EQ(reassembler.errors(), 0u);
}

TEST(Reassembler, InterruptedMessageRestartsCleanly) {
  const auto first = segment_message(id(0x7E0), payload_of(30));
  Reassembler reassembler;
  reassembler.feed(first[0]);  // FF, then abandon
  // A new single frame both flags the interruption and parses.
  const auto result =
      reassembler.feed(encode_single(id(0x7E0), payload_of(3)));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->size(), 3u);
  EXPECT_EQ(reassembler.last_error(),
            Reassembler::Error::kInterruptedFirstFrame);
}

TEST(Reassembler, DroppedConsecutiveFrameRecoversOnNextMessage) {
  const auto payload = payload_of(30);
  const auto frames = segment_message(id(0x7E0), payload);
  Reassembler reassembler;
  reassembler.feed(frames[0]);
  reassembler.feed(frames[1]);
  reassembler.feed(frames[3]);  // CF #2 lost on the wire
  EXPECT_EQ(reassembler.last_error(), Reassembler::Error::kSequenceMismatch);
  EXPECT_EQ(reassembler.errors(), 1u);
  EXPECT_FALSE(reassembler.in_progress());
  // The very next message reassembles cleanly.
  std::optional<util::Bytes> result;
  for (const auto& frame : frames) result = reassembler.feed(frame);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, payload);
  EXPECT_EQ(reassembler.errors(), 1u);
}

TEST(Reassembler, OutOfOrderConsecutiveIsSequenceMismatch) {
  const auto frames = segment_message(id(0x7E0), payload_of(30));
  Reassembler reassembler;
  reassembler.feed(frames[0]);
  reassembler.feed(frames[2]);  // CF #2 arrives before CF #1
  EXPECT_EQ(reassembler.last_error(), Reassembler::Error::kSequenceMismatch);
  EXPECT_FALSE(reassembler.in_progress());
}

TEST(Reassembler, DuplicatedConsecutiveIsToleratedMidMessage) {
  const auto payload = payload_of(30);
  const auto frames = segment_message(id(0x7E0), payload);
  Reassembler reassembler;
  reassembler.feed(frames[0]);
  reassembler.feed(frames[1]);
  reassembler.feed(frames[1]);  // bus duplicated the CF just consumed
  EXPECT_EQ(reassembler.errors(), 0u);
  EXPECT_EQ(reassembler.duplicate_frames(), 1u);
  std::optional<util::Bytes> result;
  for (std::size_t i = 2; i < frames.size(); ++i) {
    result = reassembler.feed(frames[i]);
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, payload);
}

TEST(Reassembler, DuplicatedFinalConsecutiveAfterCompletionIgnored) {
  const auto payload = payload_of(20);
  const auto frames = segment_message(id(0x7E0), payload);
  Reassembler reassembler;
  std::optional<util::Bytes> result;
  for (const auto& frame : frames) result = reassembler.feed(frame);
  ASSERT_TRUE(result.has_value());
  // A retransmitted copy of the last CF lands after the message closed.
  EXPECT_EQ(reassembler.feed(frames.back()), std::nullopt);
  EXPECT_EQ(reassembler.errors(), 0u);
  EXPECT_EQ(reassembler.duplicate_frames(), 1u);
}

TEST(Reassembler, FirstFrameInterruptingInProgressMessage) {
  const auto abandoned = segment_message(id(0x7E0), payload_of(30));
  const auto payload = payload_of(25);
  const auto fresh = segment_message(id(0x7E0), payload);
  Reassembler reassembler;
  reassembler.feed(abandoned[0]);
  reassembler.feed(abandoned[1]);
  // A new FF interrupts: error recorded, new message tracked from scratch.
  EXPECT_EQ(reassembler.feed(fresh[0]), std::nullopt);
  EXPECT_EQ(reassembler.last_error(),
            Reassembler::Error::kInterruptedFirstFrame);
  EXPECT_TRUE(reassembler.in_progress());
  std::optional<util::Bytes> result;
  for (std::size_t i = 1; i < fresh.size(); ++i) {
    result = reassembler.feed(fresh[i]);
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, payload);
}

TEST(FlowControl, EncodeDecodeRoundTrip) {
  const FlowControl fc{FlowStatus::kContinueToSend, 8, 20};
  const auto decoded = decode_flow_control(
      encode_flow_control(id(0x7E8), fc));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, FlowStatus::kContinueToSend);
  EXPECT_EQ(decoded->block_size, 8);
  EXPECT_EQ(decoded->st_min, 20);
}

// --- Active endpoints over a simulated bus ---------------------------------

class EndpointPair : public ::testing::Test {
 protected:
  EndpointPair()
      : bus_(clock_),
        tester_(bus_, EndpointConfig{id(0x7E0), id(0x7E8)}),
        ecu_(bus_, EndpointConfig{id(0x7E8), id(0x7E0)}) {}

  util::SimClock clock_;
  can::CanBus bus_;
  Endpoint tester_;
  Endpoint ecu_;
};

TEST_F(EndpointPair, SingleFrameMessage) {
  util::Bytes received;
  ecu_.set_message_handler([&](const util::Bytes& m) { received = m; });
  tester_.send(util::Bytes{0x3E, 0x00});
  bus_.deliver_pending();
  EXPECT_EQ(received, (util::Bytes{0x3E, 0x00}));
}

TEST_F(EndpointPair, MultiFrameMessageWithFlowControl) {
  util::Bytes received;
  ecu_.set_message_handler([&](const util::Bytes& m) { received = m; });
  const auto payload = payload_of(100);
  tester_.send(payload);
  bus_.deliver_pending();
  EXPECT_EQ(received, payload);
  EXPECT_GE(ecu_.stats().fc_sent, 1u);
  EXPECT_EQ(tester_.stats().messages_sent, 1u);
}

TEST_F(EndpointPair, RequestResponseConversation) {
  ecu_.set_message_handler([&](const util::Bytes& m) {
    if (!m.empty() && m[0] == 0x22) {
      util::Bytes response(40, 0xAB);
      response[0] = 0x62;
      ecu_.send(response);
    }
  });
  util::Bytes response;
  tester_.set_message_handler([&](const util::Bytes& m) { response = m; });
  tester_.send(util::Bytes{0x22, 0xF4, 0x0D});
  bus_.deliver_pending();
  ASSERT_EQ(response.size(), 40u);
  EXPECT_EQ(response[0], 0x62);
}

TEST_F(EndpointPair, BlockSizePacing) {
  // Receiver advertises BS=2: sender must pause for FC every 2 CFs.
  util::SimClock clock;
  can::CanBus bus(clock);
  Endpoint tx(bus, EndpointConfig{id(0x7E0), id(0x7E8)});
  EndpointConfig rx_config{id(0x7E8), id(0x7E0)};
  rx_config.block_size = 2;
  Endpoint rx(bus, rx_config);
  util::Bytes received;
  rx.set_message_handler([&](const util::Bytes& m) { received = m; });
  tx.send(payload_of(62));  // FF + 8 CFs
  bus.deliver_pending();
  EXPECT_EQ(received, payload_of(62));
  EXPECT_GE(rx.stats().fc_sent, 4u);  // initial FC + one per block
}

TEST_F(EndpointPair, OverflowRejectsTooLongMessage) {
  util::SimClock clock;
  can::CanBus bus(clock);
  Endpoint tx(bus, EndpointConfig{id(0x7E0), id(0x7E8)});
  EndpointConfig rx_config{id(0x7E8), id(0x7E0)};
  rx_config.max_rx_length = 32;
  Endpoint rx(bus, rx_config);
  bool delivered = false;
  rx.set_message_handler([&](const util::Bytes&) { delivered = true; });
  tx.send(payload_of(100));
  bus.deliver_pending();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(rx.stats().overflows, 1u);
  EXPECT_EQ(tx.stats().overflows, 1u);
}

TEST_F(EndpointPair, SendWhileInFlightThrows) {
  // Without delivering the bus, the FF is queued and no FC returns.
  tester_.send(payload_of(50));
  EXPECT_THROW(tester_.send(payload_of(50)), std::logic_error);
}

TEST_F(EndpointPair, RejectsEmptyAndOversizedPayloads) {
  EXPECT_THROW(tester_.send(util::Bytes{}), std::invalid_argument);
  EXPECT_THROW(tester_.send(payload_of(4096)), std::invalid_argument);
}

TEST_F(EndpointPair, StMinAdvancesClock) {
  util::SimClock clock;
  can::CanBus bus(clock);
  Endpoint tx(bus, EndpointConfig{id(0x7E0), id(0x7E8)});
  EndpointConfig rx_config{id(0x7E8), id(0x7E0)};
  rx_config.st_min_ms = 10;
  Endpoint rx(bus, rx_config);
  util::Bytes received;
  rx.set_message_handler([&](const util::Bytes& m) { received = m; });
  tx.send(payload_of(27));  // FF + 3 CFs
  bus.deliver_pending();
  EXPECT_EQ(received, payload_of(27));
  EXPECT_GE(clock.now(), 30 * util::kMillisecond);
}

}  // namespace
}  // namespace dpr::isotp

namespace dpr::isotp {
namespace {

TEST(Property, ReassemblerSurvivesRandomFrameSoup) {
  // Arbitrary frame streams (valid, truncated, shuffled) must never
  // crash the passive reassembler, and any message it does emit must
  // have come from an uncorrupted segment run.
  util::Rng rng(53);
  Reassembler reassembler;
  for (int i = 0; i < 20000; ++i) {
    const int dlc = static_cast<int>(rng.uniform_int(0, 8));
    util::Bytes data;
    for (int k = 0; k < dlc; ++k) {
      data.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    const can::CanFrame frame(can::CanId{0x7E8, false}, data);
    const auto message = reassembler.feed(frame);
    if (message) {
      EXPECT_GE(message->size(), 1u);
      EXPECT_LE(message->size(), kMaxMessageLength);
    }
  }
}

TEST(Property, SegmentedFramesAllFitClassicalCan) {
  util::Rng rng(59);
  for (int trial = 0; trial < 200; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 4095));
    util::Bytes payload(n);
    for (auto& b : payload) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    for (const auto& frame :
         segment_message(can::CanId{0x7E0, false}, payload)) {
      EXPECT_LE(frame.dlc(), 8);
      EXPECT_GE(frame.dlc(), 1);
    }
  }
}

}  // namespace
}  // namespace dpr::isotp
