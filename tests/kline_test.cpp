#include <gtest/gtest.h>

#include "kline/bus.hpp"
#include "kline/endpoint.hpp"
#include "kline/message.hpp"
#include "kwp/client.hpp"
#include "kwp/server.hpp"
#include "util/rng.hpp"

namespace dpr::kline {
namespace {

TEST(Checksum, Modulo256Sum) {
  const std::vector<std::uint8_t> bytes{0x82, 0x10, 0xF1, 0x21, 0x07};
  EXPECT_EQ(checksum(bytes), (0x82 + 0x10 + 0xF1 + 0x21 + 0x07) & 0xFF);
}

TEST(Encode, AddressedShortFrame) {
  Frame frame;
  frame.target = 0x10;
  frame.source = 0xF1;
  frame.payload = {0x21, 0x07};
  const auto wire = encode(frame);
  // Fmt(0x80|2) Tgt Src Data Data Checksum.
  ASSERT_EQ(wire.size(), 6u);
  EXPECT_EQ(wire[0], 0x82);
  EXPECT_EQ(wire[1], 0x10);
  EXPECT_EQ(wire[2], 0xF1);
  EXPECT_EQ(wire.back(),
            checksum(std::span<const std::uint8_t>(wire.data(),
                                                   wire.size() - 1)));
}

TEST(Encode, LongFrameUsesSeparateLengthByte) {
  Frame frame;
  frame.payload.assign(100, 0xAA);
  const auto wire = encode(frame);
  EXPECT_EQ(wire[0], 0x80);   // length bits zero
  EXPECT_EQ(wire[3], 100);    // explicit Len byte
  EXPECT_EQ(wire.size(), 1u + 2u + 1u + 100u + 1u);
}

TEST(Encode, RejectsEmptyAndOversized) {
  Frame frame;
  EXPECT_THROW(encode(frame), std::invalid_argument);
  frame.payload.assign(256, 0);
  EXPECT_THROW(encode(frame), std::invalid_argument);
}

class DecoderRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DecoderRoundTrip, EncodeDecode) {
  Frame frame;
  frame.target = 0x33;
  frame.source = 0xF1;
  for (std::size_t i = 0; i < GetParam(); ++i) {
    frame.payload.push_back(static_cast<std::uint8_t>(i * 7));
  }
  Decoder decoder;
  std::optional<Frame> result;
  for (std::uint8_t byte : encode(frame)) result = decoder.feed(byte);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->target, 0x33);
  EXPECT_EQ(result->source, 0xF1);
  EXPECT_EQ(result->payload, frame.payload);
  EXPECT_EQ(decoder.checksum_errors(), 0u);
}

INSTANTIATE_TEST_SUITE_P(PayloadLengths, DecoderRoundTrip,
                         ::testing::Values(1, 2, 5, 0x3F, 0x40, 100, 255));

TEST(Decoder, ChecksumErrorDetectedAndCounted) {
  Frame frame;
  frame.payload = {0x3E};
  auto wire = encode(frame);
  wire.back() ^= 0xFF;  // corrupt the checksum
  Decoder decoder;
  std::optional<Frame> result;
  for (std::uint8_t byte : wire) result = decoder.feed(byte);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(decoder.checksum_errors(), 1u);
  // Decoder recovers: a following good frame parses.
  for (std::uint8_t byte : encode(frame)) result = decoder.feed(byte);
  EXPECT_TRUE(result.has_value());
}

TEST(Bus, ByteTimingAt10k4Baud) {
  util::SimClock clock;
  KLineBus bus(clock);
  bus.send_byte(0x55);
  bus.deliver_pending();
  // 10 bits / 10400 baud ~ 961 us.
  EXPECT_NEAR(static_cast<double>(clock.now()), 961.0, 3.0);
}

TEST(Bus, FastInitWakeupAdvances50Ms) {
  util::SimClock clock;
  KLineBus bus(clock);
  bool woke = false;
  bus.attach_wakeup([&](Wakeup kind, util::SimTime) {
    woke = kind == Wakeup::kFastInit;
  });
  bus.send_wakeup(Wakeup::kFastInit);
  bus.deliver_pending();
  EXPECT_TRUE(woke);
  EXPECT_EQ(clock.now(), 50 * util::kMillisecond);
}

TEST(Endpoint, FastInitHandshakeThenKwpConversation) {
  util::SimClock clock;
  KLineBus bus(clock);
  Endpoint tester(bus, EndpointConfig{0xF1, 0x10, /*is_tester=*/true});
  Endpoint ecu(bus, EndpointConfig{0x10, 0xF1, /*is_tester=*/false});

  // A KWP server behind the K-Line link — the Table 1 stack.
  kwp::Server server;
  server.add_local_id(0x07, [] {
    return std::vector<kwp::EsvRecord>{{0x01, 0xF1, 0x10}};
  });
  server.bind(ecu);

  kwp::Client client(tester, [&] { bus.deliver_pending(); });
  const auto resp = client.read_local_id(0x07);
  ASSERT_TRUE(resp.has_value());
  ASSERT_EQ(resp->records.size(), 1u);
  EXPECT_EQ(resp->records[0].x0, 0xF1);
  EXPECT_TRUE(tester.communication_started());
  EXPECT_TRUE(ecu.communication_started());
}

TEST(Endpoint, HandshakeHappensOnlyOnce) {
  util::SimClock clock;
  KLineBus bus(clock);
  Endpoint tester(bus, EndpointConfig{0xF1, 0x10, true});
  Endpoint ecu(bus, EndpointConfig{0x10, 0xF1, false});
  kwp::Server server;
  server.add_local_id(0x01, [] {
    return std::vector<kwp::EsvRecord>{{0x07, 0x64, 0x20}};
  });
  server.bind(ecu);
  kwp::Client client(tester, [&] { bus.deliver_pending(); });
  client.read_local_id(0x01);
  const util::SimTime after_first = clock.now();
  client.read_local_id(0x01);
  // No second 50 ms wakeup: the two reads are much closer than the init.
  EXPECT_LT(clock.now() - after_first, 40 * util::kMillisecond);
}

TEST(Endpoint, RebootedEcuIsDeafUntilFreshFastInit) {
  util::SimClock clock;
  KLineBus bus(clock);
  Endpoint tester(bus, EndpointConfig{0xF1, 0x10, /*is_tester=*/true});
  Endpoint ecu(bus, EndpointConfig{0x10, 0xF1, /*is_tester=*/false});
  kwp::Server server;
  server.add_local_id(0x07, [] {
    return std::vector<kwp::EsvRecord>{{0x01, 0xF1, 0x10}};
  });
  server.bind(ecu);
  kwp::Client client(tester, [&] { bus.deliver_pending(); },
                     util::TransactPolicy::resilient(), &clock);
  ASSERT_TRUE(client.read_local_id(0x07).has_value());

  // The ECU reboots: it forgets it ever saw the fast-init pattern and is
  // fully deaf — the tester's next request dies with no reply, and the
  // client responds by dropping its side of the handshake (reconnect).
  ecu.require_wakeup();
  EXPECT_FALSE(ecu.awake());
  EXPECT_FALSE(client.read_local_id(0x07).has_value());
  EXPECT_FALSE(tester.communication_started());

  // The retry now re-issues fast-init + StartCommunication and the
  // conversation resumes; without the fresh wakeup it never would.
  ASSERT_TRUE(client.read_local_id(0x07).has_value());
  EXPECT_TRUE(ecu.awake());
  EXPECT_TRUE(ecu.communication_started());
}

TEST(Endpoint, IgnoresFramesForOtherAddresses) {
  util::SimClock clock;
  KLineBus bus(clock);
  Endpoint ecu_a(bus, EndpointConfig{0x10, 0xF1, false});
  Endpoint ecu_b(bus, EndpointConfig{0x20, 0xF1, false});
  int a_count = 0, b_count = 0;
  ecu_a.set_message_handler([&](const util::Bytes&) { ++a_count; });
  ecu_b.set_message_handler([&](const util::Bytes&) { ++b_count; });
  Frame frame;
  frame.target = 0x10;
  frame.source = 0xF1;
  frame.payload = {0x3E, 0x00};
  bus.send(encode(frame));
  bus.deliver_pending();
  EXPECT_EQ(a_count, 1);
  EXPECT_EQ(b_count, 0);
}

}  // namespace
}  // namespace dpr::kline

namespace dpr::kline {
namespace {

TEST(Property, DecoderSurvivesRandomByteSoup) {
  util::Rng rng(61);
  Decoder decoder;
  std::size_t frames = 0;
  for (int i = 0; i < 100000; ++i) {
    if (decoder.feed(static_cast<std::uint8_t>(rng.uniform_int(0, 255)))) {
      ++frames;
    }
  }
  // Random bytes rarely checksum correctly, but when they do the frame
  // must be structurally valid (non-empty payload).
  SUCCEED() << frames << " accidental frames";
}

}  // namespace
}  // namespace dpr::kline
