#include <gtest/gtest.h>

#include <cmath>

#include "kwp/client.hpp"
#include "kwp/formulas.hpp"
#include "kwp/message.hpp"
#include "kwp/server.hpp"
#include "can/bus.hpp"
#include "isotp/endpoint.hpp"

namespace dpr::kwp {
namespace {

TEST(Message, ReadRequestMatchesPaperExample) {
  // §2.3.1: "21 07" reads the engine RPM block.
  EXPECT_EQ(util::to_hex(encode_read_by_local_id(0x07)), "21 07");
  const auto decoded = decode_read_request(util::from_hex("21 07"));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->local_id, 0x07);
}

TEST(Message, ReadResponseThreeByteRecords) {
  const std::vector<EsvRecord> records{{0x01, 0xF1, 0x10},
                                       {0x07, 0x64, 0x55}};
  const auto payload = encode_read_response(0x07, records);
  EXPECT_EQ(util::to_hex(payload), "61 07 01 F1 10 07 64 55");
  const auto decoded = decode_read_response(payload);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->records.size(), 2u);
  EXPECT_EQ(decoded->records[0].formula_type, 0x01);
  EXPECT_EQ(decoded->records[0].x0, 0xF1);
  EXPECT_EQ(decoded->records[0].x1, 0x10);
}

TEST(Message, ReadResponseRejectsPartialRecord) {
  EXPECT_EQ(decode_read_response(util::from_hex("61 07 01 F1")),
            std::nullopt);
}

TEST(Message, IoControlLocalMatchesPaperExample) {
  // §2.3.1 example: "30 15 00 40 00" turns the light on.
  const util::Bytes ecr{0x00, 0x40, 0x00};
  EXPECT_EQ(util::to_hex(encode_io_control_local(0x15, ecr)),
            "30 15 00 40 00");
  const auto decoded =
      decode_io_local_request(util::from_hex("30 15 00 40 00"));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->local_id, 0x15);
  EXPECT_EQ(decoded->ecr, ecr);
}

TEST(Message, IoControlCommonRoundTrip) {
  const util::Bytes ecr{0x03, 0x05};
  const auto payload = encode_io_control_common(0x0950, ecr);
  EXPECT_EQ(util::to_hex(payload), "2F 09 50 03 05");
  const auto decoded = decode_io_common_request(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->common_id, 0x0950);
  EXPECT_EQ(decoded->ecr, ecr);
}

TEST(Formulas, PaperRpmExample) {
  // §2.3.1: ESV "01 F1 10": type 0x01, formula X0*X1/5 -> 771.2.
  const auto value = decode_esv(0x01, 0xF1, 0x10);
  ASSERT_TRUE(value.has_value());
  EXPECT_NEAR(*value, 771.2, 1e-9);
}

TEST(Formulas, TableHasPaperFormulaTypes) {
  ASSERT_TRUE(find_formula(0x01).has_value());
  EXPECT_EQ(find_formula(0x01)->expression, "X0*X1/5");
  EXPECT_TRUE(find_formula(0x07).has_value());   // vehicle speed
  EXPECT_TRUE(find_formula(0x17).has_value());   // torque assistance
  EXPECT_FALSE(find_formula(0xEE).has_value());  // unknown type
}

TEST(Formulas, EnumKindsHaveNoNumericDecode) {
  EXPECT_EQ(find_formula(0x11)->kind, FormulaKind::kEnum);
  EXPECT_EQ(decode_esv(0x11, 0x00, 0x01), std::nullopt);
}

TEST(Formulas, EncodeX1FindsClosestByte) {
  // Vehicle speed type 0x07 with X0 = 0x64: Y = X1.
  const auto x1 = encode_esv_x1(0x07, 0x64, 120.0);
  ASSERT_TRUE(x1.has_value());
  EXPECT_EQ(*x1, 120);
}

class KwpFormulaSweep : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(KwpFormulaSweep, DecodeIsFiniteAcrossOperandSpace) {
  const auto spec = find_formula(GetParam());
  ASSERT_TRUE(spec.has_value());
  if (spec->kind != FormulaKind::kNumeric) return;
  for (int x0 = 0; x0 < 256; x0 += 15) {
    for (int x1 = 0; x1 < 256; x1 += 15) {
      const auto value = decode_esv(GetParam(), static_cast<std::uint8_t>(x0),
                                    static_cast<std::uint8_t>(x1));
      ASSERT_TRUE(value.has_value());
      EXPECT_TRUE(std::isfinite(*value));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, KwpFormulaSweep,
                         ::testing::Values(0x01, 0x02, 0x05, 0x06, 0x07,
                                           0x08, 0x12, 0x16, 0x17, 0x19,
                                           0x1A, 0x1B, 0x21, 0x22, 0x23,
                                           0x31));

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() {
    server_.add_local_id(0x07, [] {
      return std::vector<EsvRecord>{{0x01, 0xF1, 0x10}};
    });
    server_.add_io_local(0x15,
                         [](std::span<const std::uint8_t> ecr)
                             -> std::optional<util::Bytes> {
                           return util::Bytes(ecr.begin(), ecr.end());
                         });
    server_.add_io_common(0x0950,
                          [](std::span<const std::uint8_t>)
                              -> std::optional<util::Bytes> {
                            return util::Bytes{0x03};
                          });
  }
  Server server_;
};

TEST_F(ServerTest, StartSession) {
  EXPECT_EQ(util::to_hex(server_.handle(util::from_hex("10 89"))), "50 89");
  EXPECT_TRUE(server_.session_started());
}

TEST_F(ServerTest, ReadLocalId) {
  EXPECT_EQ(util::to_hex(server_.handle(util::from_hex("21 07"))),
            "61 07 01 F1 10");
}

TEST_F(ServerTest, UnknownLocalIdRejected) {
  EXPECT_EQ(util::to_hex(server_.handle(util::from_hex("21 99"))),
            "7F 21 31");
}

TEST_F(ServerTest, IoControlLocalEchoesStatus) {
  EXPECT_EQ(util::to_hex(server_.handle(util::from_hex("30 15 00 40 00"))),
            "70 15 00 40 00");
}

TEST_F(ServerTest, IoControlCommon) {
  EXPECT_EQ(util::to_hex(server_.handle(util::from_hex("2F 09 50 03"))),
            "6F 09 50 03");
}

TEST_F(ServerTest, UnknownServiceRejected) {
  EXPECT_EQ(util::to_hex(server_.handle(util::from_hex("31 01"))),
            "7F 31 11");
}

TEST(ClientServer, ReadOverIsoTp) {
  util::SimClock clock;
  can::CanBus bus(clock);
  isotp::Endpoint tester_link(
      bus, isotp::EndpointConfig{can::CanId{0x700, false},
                                 can::CanId{0x701, false}});
  isotp::Endpoint ecu_link(
      bus, isotp::EndpointConfig{can::CanId{0x701, false},
                                 can::CanId{0x700, false}});
  Server server;
  // Four ESVs -> 14-byte response -> multi-frame.
  server.add_local_id(0x02, [] {
    return std::vector<EsvRecord>{{0x01, 0xC8, 0x20},
                                  {0x07, 0x64, 0x50},
                                  {0x05, 0x0A, 0x96},
                                  {0x06, 0x5F, 0x80}};
  });
  server.bind(ecu_link);
  Client client(tester_link, [&] { bus.deliver_pending(); });
  EXPECT_TRUE(client.start_session());
  const auto resp = client.read_local_id(0x02);
  ASSERT_TRUE(resp.has_value());
  ASSERT_EQ(resp->records.size(), 4u);
  EXPECT_EQ(resp->records[2].formula_type, 0x05);
}

}  // namespace
}  // namespace dpr::kwp

namespace dpr::kwp {
namespace {

TEST(DtcServices, ReadAndClear) {
  Server server;
  server.add_dtc(0x0301);
  server.add_dtc(0x4523, 0xA0);
  const auto resp = server.handle(util::from_hex("18 00 FF 00"));
  ASSERT_GE(resp.size(), 2u);
  EXPECT_EQ(resp[0], 0x58);
  EXPECT_EQ(resp[1], 2);  // count
  EXPECT_EQ(util::to_hex(server.handle(util::from_hex("14 FF 00"))),
            "54 FF 00");
  EXPECT_TRUE(server.dtcs().empty());
}

TEST(DtcServices, IdentificationReadBack) {
  Server server;
  server.set_identification(util::Bytes(40, 'A'));
  const auto resp = server.handle(util::from_hex("1A 9B"));
  ASSERT_EQ(resp.size(), 42u);
  EXPECT_EQ(resp[0], 0x5A);
  EXPECT_EQ(resp[1], 0x9B);
}

}  // namespace
}  // namespace dpr::kwp
