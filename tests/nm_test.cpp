#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "can/bus.hpp"
#include "nm/nm.hpp"
#include "util/fault.hpp"

namespace dpr::nm {
namespace {

// Pump the bus in small sim-time steps so NM services tick the way a
// campaign's delivery loop ticks them.
void pump(can::CanBus& bus, util::SimClock& clock, util::SimTime duration,
          util::SimTime step = 5 * util::kMillisecond) {
  const util::SimTime deadline = clock.now() + duration;
  while (clock.now() < deadline) {
    clock.advance(std::min<util::SimTime>(step, deadline - clock.now()));
    bus.deliver_pending();
  }
}

util::CounterRng stream(std::uint8_t address) {
  util::FaultConfig faults;
  return faults.stream_for(kNmStreamSalt + address);
}

struct Rig {
  util::SimClock clock;
  can::CanBus bus{clock};
  NmConfig config;
  std::unique_ptr<NmManager> manager;

  explicit Rig(std::size_t nodes, NmConfig cfg = {}) : config(cfg) {
    manager = std::make_unique<NmManager>(bus, config);
    for (std::size_t i = 0; i < nodes; ++i) {
      const auto address = static_cast<std::uint8_t>(i + 1);
      manager->add_node(address, stream(address));
    }
  }
};

TEST(NmRing, FormsFullMembershipAndCirculatesToken) {
  Rig rig(4);
  pump(rig.bus, rig.clock, 2 * util::kSecond);

  const std::uint64_t everyone = 0b11110;  // addresses 1..4
  for (const auto& node : rig.manager->nodes()) {
    EXPECT_EQ(node->members(), everyone)
        << "node " << int(node->address()) << " has partial membership";
    EXPECT_FALSE(node->in_limp_home());
    // Every member held and passed the token at least once.
    EXPECT_GT(node->stats().ring_sent, 0u);
  }
  EXPECT_EQ(rig.manager->stats().limp_episodes, 0u);
}

TEST(NmSleep, QuietBusSleepsAndWakeupReenters) {
  NmConfig cfg;
  cfg.sleep_timeout = 300 * util::kMillisecond;
  cfg.sleep_countdown = 100 * util::kMillisecond;
  Rig rig(3, cfg);

  pump(rig.bus, rig.clock, 2 * util::kSecond);
  EXPECT_TRUE(rig.bus.asleep());
  EXPECT_EQ(rig.bus.sleeps(), 1u);
  for (const auto& node : rig.manager->nodes()) {
    EXPECT_TRUE(node->asleep());
  }

  // Normal frames die against the sleeping bus.
  rig.bus.send(can::CanFrame(0x7E0, {0x02, 0x10, 0x01}));
  EXPECT_EQ(rig.bus.frames_lost_to_sleep(), 1u);

  // A wakeup frame restarts the whole ring.
  send_wakeup(rig.bus, cfg, 0x3E);
  EXPECT_FALSE(rig.bus.asleep());
  EXPECT_EQ(rig.bus.wakeups(), 1u);
  pump(rig.bus, rig.clock, 250 * util::kMillisecond);
  const std::uint64_t everyone = 0b1110;  // addresses 1..3
  for (const auto& node : rig.manager->nodes()) {
    EXPECT_FALSE(node->asleep());
    EXPECT_EQ(node->members(), everyone);
  }
}

TEST(NmSleep, VetoHoldoutNodePinsTheBusAwake) {
  // One node joins the ring but never agrees to sleep (ISSUE 9): the
  // two-phase sleep agreement can never complete, so the exact quiet
  // window that put the 3-node ring above to sleep — with 6x margin —
  // leaves this bus awake forever.
  NmConfig cfg;
  cfg.sleep_timeout = 300 * util::kMillisecond;
  cfg.sleep_countdown = 100 * util::kMillisecond;
  util::SimClock clock;
  can::CanBus bus{clock};
  NmManager manager(bus, cfg);
  for (std::uint8_t address = 1; address <= 3; ++address) {
    manager.add_node(address, stream(address), nullptr,
                     /*allow_sleep=*/address != 2);
  }

  pump(bus, clock, 2 * util::kSecond);
  EXPECT_FALSE(bus.asleep());
  EXPECT_EQ(bus.sleeps(), 0u);
  // The holdout costs nothing but the naps: the ring itself stays whole.
  const std::uint64_t everyone = 0b1110;  // addresses 1..3
  for (const auto& node : manager.nodes()) {
    EXPECT_FALSE(node->asleep());
    EXPECT_EQ(node->members(), everyone);
    EXPECT_FALSE(node->in_limp_home());
  }
  EXPECT_EQ(manager.stats().limp_episodes, 0u);
}

TEST(NmSleep, ApplicationTrafficDefersSleep) {
  NmConfig cfg;
  cfg.sleep_timeout = 300 * util::kMillisecond;
  cfg.sleep_countdown = 100 * util::kMillisecond;
  Rig rig(3, cfg);

  // A frame every 200 ms keeps undercutting the 300 ms quiet-bus horizon.
  for (int i = 0; i < 15; ++i) {
    rig.bus.send(can::CanFrame(0x123, {0x00}));
    pump(rig.bus, rig.clock, 200 * util::kMillisecond);
  }
  EXPECT_EQ(rig.bus.sleeps(), 0u);
  EXPECT_FALSE(rig.bus.asleep());
}

TEST(NmSleep, WakeupFramesOnAwakeBusDeferSleep) {
  NmConfig cfg;
  cfg.sleep_timeout = 300 * util::kMillisecond;
  cfg.sleep_countdown = 100 * util::kMillisecond;
  Rig rig(3, cfg);

  // A tester outside the ring announces "bus needed" every 200 ms. The
  // wakeup must reset the quiet-bus timer even though the bus never slept.
  for (int i = 0; i < 15; ++i) {
    send_wakeup(rig.bus, cfg, 0x3E);
    pump(rig.bus, rig.clock, 200 * util::kMillisecond);
  }
  EXPECT_EQ(rig.bus.sleeps(), 0u);
}

TEST(NmLimpHome, VanishedTokenHolderTriggersLimpAndRepair) {
  util::SimClock clock;
  can::CanBus bus(clock);
  NmConfig cfg;
  NmManager manager(bus, cfg);
  bool node3_offline = false;
  manager.add_node(1, stream(1));
  manager.add_node(2, stream(2));
  manager.add_node(3, stream(3),
                   [&node3_offline](util::SimTime) { return node3_offline; });

  pump(bus, clock, 1 * util::kSecond);
  ASSERT_FALSE(manager.nodes()[0]->in_limp_home());

  // Node 3 reboots mid-ring: the survivors stop seeing ring frames within
  // ring_max and drop to limp-home heartbeats.
  node3_offline = true;
  pump(bus, clock, 1 * util::kSecond);
  EXPECT_TRUE(manager.nodes()[0]->in_limp_home());
  EXPECT_TRUE(manager.nodes()[1]->in_limp_home());
  EXPECT_GT(manager.stats().limp_episodes, 0u);
  const std::uint64_t limp_sent = manager.nodes()[0]->stats().limp_sent +
                                  manager.nodes()[1]->stats().limp_sent;
  EXPECT_GT(limp_sent, 0u);

  // The node returns, re-announces itself, and the lowest survivor
  // re-originates the token: the ring repairs without any RNG involved.
  node3_offline = false;
  pump(bus, clock, 1 * util::kSecond);
  EXPECT_FALSE(manager.nodes()[0]->in_limp_home());
  EXPECT_FALSE(manager.nodes()[1]->in_limp_home());
  EXPECT_FALSE(manager.nodes()[2]->in_limp_home());
  EXPECT_GT(manager.stats().ring_repairs, 0u);
  for (const auto& node : manager.nodes()) {
    EXPECT_EQ(node->members(), 0b1110u);
  }
}

TEST(NmLifecycle, FramesQueuedBeforeSleepAreSwallowedAtDelivery) {
  util::SimClock clock;
  can::CanBus bus(clock);
  bus.enable_lifecycle(0x420, 0x40);

  // Queued while awake, but the bus powers down before delivery (the NM
  // countdown expiring inside the same delivery window): the frame must
  // die like any frame sent against a sleeping bus, or its receiver would
  // answer into the void and wedge its transport mid-transfer.
  bus.send(can::CanFrame(0x7E0, {0x01}));
  bus.sleep();
  std::size_t delivered = 0;
  bus.attach([&](const can::CanFrame&, util::SimTime) { ++delivered; });
  bus.deliver_pending();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(bus.frames_lost_to_sleep(), 1u);

  // The wakeup-range send wakes the bus at send() time and is delivered.
  bus.send(can::CanFrame(0x45E, {0x00, kOpWakeup}));
  bus.deliver_pending();
  EXPECT_FALSE(bus.asleep());
  EXPECT_EQ(delivered, 1u);
}

TEST(NmDeterminism, IdenticalRunsProduceIdenticalStats) {
  auto run = [](int salt_unused) {
    (void)salt_unused;
    NmConfig cfg;
    cfg.sleep_timeout = 400 * util::kMillisecond;
    cfg.sleep_countdown = 150 * util::kMillisecond;
    Rig rig(5, cfg);
    bool offline = false;
    rig.manager->add_node(6, stream(6),
                          [&offline](util::SimTime) { return offline; });
    // A busy stretch, a vanished node, a quiet stretch that sleeps the
    // bus, and a wakeup re-entry — the full lifecycle in one schedule.
    for (int i = 0; i < 5; ++i) {
      rig.bus.send(can::CanFrame(0x123, {std::uint8_t(i)}));
      pump(rig.bus, rig.clock, 100 * util::kMillisecond);
    }
    offline = true;
    pump(rig.bus, rig.clock, 600 * util::kMillisecond);
    offline = false;
    pump(rig.bus, rig.clock, 600 * util::kMillisecond);
    pump(rig.bus, rig.clock, 2 * util::kSecond);
    send_wakeup(rig.bus, cfg, 0x3E);
    pump(rig.bus, rig.clock, 500 * util::kMillisecond);

    std::vector<std::uint64_t> out;
    const NmStats total = rig.manager->stats();
    out.push_back(total.sleeps);
    out.push_back(total.wakeups);
    out.push_back(total.frames_lost_to_sleep);
    out.push_back(total.limp_episodes);
    out.push_back(total.ring_repairs);
    out.push_back(total.nm_frames_sent);
    for (const auto& node : rig.manager->nodes()) {
      out.push_back(node->members());
      out.push_back(node->stats().alive_sent);
      out.push_back(node->stats().ring_sent);
      out.push_back(node->stats().limp_sent);
      out.push_back(node->stats().acks_sent);
    }
    out.push_back(rig.clock.now());
    return out;
  };
  const auto a = run(0);
  const auto b = run(1);
  EXPECT_EQ(a, b);
  EXPECT_GT(a[0], 0u) << "scenario never slept the bus";
  EXPECT_GT(a[3], 0u) << "scenario never entered limp-home";
  EXPECT_GT(a[4], 0u) << "scenario never repaired the ring";
}

}  // namespace
}  // namespace dpr::nm
