#include <gtest/gtest.h>

#include <cmath>

#include "obd/pid.hpp"

namespace dpr::obd {
namespace {

TEST(PidTable, ContainsTheSevenTable5Pids) {
  for (std::uint8_t pid : {0x11, 0x04, 0x2F, 0x0C, 0x0D, 0x05, 0x0B}) {
    EXPECT_TRUE(find_pid(pid).has_value()) << "missing PID " << int(pid);
  }
}

TEST(PidTable, RpmDecodeMatchesStandard) {
  const auto spec = find_pid(0x0C);
  ASSERT_TRUE(spec.has_value());
  const util::Bytes raw{0x1A, 0xF8};
  EXPECT_NEAR(spec->decode(raw), (256.0 * 0x1A + 0xF8) / 4.0, 1e-9);
}

TEST(PidTable, CoolantTempOffset) {
  const auto spec = find_pid(0x05);
  ASSERT_TRUE(spec.has_value());
  EXPECT_DOUBLE_EQ(spec->decode(util::Bytes{0x7B}), 0x7B - 40.0);
}

TEST(PidTable, ThrottleScale) {
  const auto spec = find_pid(0x11);
  ASSERT_TRUE(spec.has_value());
  EXPECT_NEAR(spec->decode(util::Bytes{0xFF}), 100.0, 0.01);
}

class PidRoundTrip : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(PidRoundTrip, EncodeDecodeConsistentAcrossRange) {
  const auto spec = find_pid(GetParam());
  ASSERT_TRUE(spec.has_value());
  for (int step = 0; step <= 10; ++step) {
    const double value =
        spec->min_value +
        (spec->max_value - spec->min_value) * step / 10.0;
    const auto raw = spec->encode(value);
    ASSERT_EQ(raw.size(), spec->data_bytes);
    const double decoded = spec->decode(raw);
    // Round-trip within one quantization step.
    const double quantum =
        (spec->max_value - spec->min_value) /
        std::pow(256.0, static_cast<double>(spec->data_bytes));
    EXPECT_NEAR(decoded, value, quantum * 2 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPids, PidRoundTrip,
                         ::testing::Values(0x04, 0x05, 0x0B, 0x0C, 0x0D,
                                           0x0E, 0x0F, 0x10, 0x11, 0x2F,
                                           0x42, 0x46, 0x5C));

TEST(Protocol, RequestEncoding) {
  EXPECT_EQ(util::to_hex(encode_request(0x0C)), "01 0C");
}

TEST(Protocol, ResponseRoundTrip) {
  const util::Bytes data{0x1A, 0xF8};
  const auto payload = encode_response(0x0C, data);
  EXPECT_EQ(util::to_hex(payload), "41 0C 1A F8");
  const auto decoded = decode_response(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->pid, 0x0C);
  EXPECT_EQ(decoded->data, data);
}

TEST(Protocol, DecodeValueAppliesStandardFormula) {
  const auto value = decode_value(util::from_hex("41 0D 64"));
  ASSERT_TRUE(value.has_value());
  EXPECT_DOUBLE_EQ(*value, 100.0);  // vehicle speed Y = X
}

TEST(Protocol, DecodeValueRejectsMalformed) {
  EXPECT_EQ(decode_value(util::from_hex("41 0C")), std::nullopt);
  EXPECT_EQ(decode_value(util::from_hex("7F 01 12")), std::nullopt);
}

TEST(PidTable, SpecsHaveSaneRangesAndFormulas) {
  for (const auto& spec : pid_table()) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.formula.empty());
    EXPECT_LT(spec.min_value, spec.max_value);
    EXPECT_GE(spec.data_bytes, 1u);
    EXPECT_LE(spec.data_bytes, 2u);
  }
}

}  // namespace
}  // namespace dpr::obd
