#include <gtest/gtest.h>

#include "can/bus.hpp"
#include "oemtp/bmw_framing.hpp"
#include "oemtp/link.hpp"

namespace dpr::oemtp {
namespace {

can::CanId id(std::uint32_t v) { return can::CanId{v, false}; }

util::Bytes payload_of(std::size_t n) {
  util::Bytes p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint8_t>(i);
  return p;
}

TEST(Framing, ShortPayloadIsAddressedSingleFrame) {
  const auto frames = segment_bmw(id(0x6F1), 0x12, util::from_hex("22 DB E5"));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].byte(0), 0x12);  // address byte first
  EXPECT_EQ(frames[0].byte(1), 0x03);  // inner SF length
  EXPECT_EQ(frames[0].byte(2), 0x22);
}

TEST(Framing, SevenBytePayloadSegments) {
  // 7 bytes exceed the 6-byte addressed single-frame budget.
  const auto frames = segment_bmw(id(0x6F1), 0x12, payload_of(7));
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].byte(1) >> 4, 0x1);  // inner FF
  EXPECT_EQ(frames[1].byte(1), 0x21);      // inner CF
}

TEST(Framing, TargetEcuExtraction) {
  const auto frames = segment_bmw(id(0x6F1), 0x40, payload_of(3));
  EXPECT_EQ(bmw_target_ecu(frames[0]), 0x40);
  EXPECT_EQ(bmw_target_ecu(can::CanFrame(0x100, {0x01})), std::nullopt);
}

class BmwRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BmwRoundTrip, ReassemblesWithAddressStripped) {
  const auto payload = payload_of(GetParam());
  Reassembler reassembler;
  std::optional<Reassembler::Message> result;
  for (const auto& frame : segment_bmw(id(0x6F1), 0x29, payload)) {
    result = reassembler.feed(frame);
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->ecu_id, 0x29);
  EXPECT_EQ(result->payload, payload);
}

INSTANTIATE_TEST_SUITE_P(PayloadLengths, BmwRoundTrip,
                         ::testing::Values(1, 5, 6, 7, 8, 11, 12, 20, 60,
                                           120));

TEST(Link, RequestResponseBetweenTesterAndEcu) {
  util::SimClock clock;
  can::CanBus bus(clock);
  // Tester transmits on the shared 0x6F1; ECU 0x12 answers on 0x652.
  BmwLink tester(bus, BmwLinkConfig{id(0x6F1), id(0x652), 0x12, 0xF1});
  BmwLink ecu(bus, BmwLinkConfig{id(0x652), id(0x6F1), 0xF1, 0x12});

  util::Bytes at_ecu, at_tester;
  ecu.set_message_handler([&](const util::Bytes& m) {
    at_ecu = m;
    ecu.send(payload_of(15));  // multi-frame response
  });
  tester.set_message_handler([&](const util::Bytes& m) { at_tester = m; });
  tester.send(util::from_hex("22 DE 9C"));
  bus.deliver_pending();
  EXPECT_EQ(at_ecu, util::from_hex("22 DE 9C"));
  EXPECT_EQ(at_tester, payload_of(15));
}

TEST(Link, IgnoresMessagesForOtherEcus) {
  util::SimClock clock;
  can::CanBus bus(clock);
  BmwLink tester(bus, BmwLinkConfig{id(0x6F1), id(0x652), 0x12, 0xF1});
  BmwLink other_ecu(bus, BmwLinkConfig{id(0x662), id(0x6F1), 0xF1, 0x22});
  bool delivered = false;
  other_ecu.set_message_handler([&](const util::Bytes&) { delivered = true; });
  tester.send(util::from_hex("22 DE 9C"));  // addressed to 0x12
  bus.deliver_pending();
  EXPECT_FALSE(delivered);
}

}  // namespace
}  // namespace dpr::oemtp
