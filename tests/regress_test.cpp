#include <gtest/gtest.h>

#include "regress/regress.hpp"
#include "util/rng.hpp"

namespace dpr::regress {
namespace {

correlate::Dataset make_dataset(
    std::size_t n_vars, const std::function<double(double, double)>& truth,
    std::size_t n = 40) {
  correlate::Dataset dataset;
  dataset.n_vars = n_vars;
  util::Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(0.0, 255.0);
    const double x1 = rng.uniform(0.0, 255.0);
    correlate::DataPoint p;
    p.xs = n_vars == 1 ? std::vector<double>{x0}
                       : std::vector<double>{x0, x1};
    p.y = truth(x0, x1);
    dataset.points.push_back(std::move(p));
  }
  return dataset;
}

TEST(LeastSquares, SolvesExactSystem) {
  // y = 2 + 3x.
  std::vector<std::vector<double>> rows{{1, 0}, {1, 1}, {1, 2}, {1, 3}};
  std::vector<double> ys{2, 5, 8, 11};
  const auto sol = solve_least_squares(rows, ys);
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR((*sol)[0], 2.0, 1e-6);
  EXPECT_NEAR((*sol)[1], 3.0, 1e-6);
}

TEST(LeastSquares, RejectsEmptyAndMismatched) {
  EXPECT_EQ(solve_least_squares({}, {}), std::nullopt);
  EXPECT_EQ(solve_least_squares({{1.0}}, {1.0, 2.0}), std::nullopt);
}

TEST(Linear, RecoversAffineFormula) {
  const auto dataset =
      make_dataset(1, [](double x, double) { return 0.1 * x - 40.0; });
  const auto fit = fit_linear(dataset);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->coefficients[0], -40.0, 1e-6);
  EXPECT_NEAR(fit->coefficients[1], 0.1, 1e-8);
  EXPECT_LT(fit->mae, 1e-6);
}

TEST(Linear, RecoversTwoVariableAffine) {
  const auto dataset = make_dataset(
      2, [](double x0, double x1) { return 64.0 * x0 + 0.25 * x1; });
  const auto fit = fit_linear(dataset);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->coefficients[1], 64.0, 1e-6);
  EXPECT_NEAR(fit->coefficients[2], 0.25, 1e-6);
}

TEST(Linear, CannotFitProduct) {
  // The paper's engine-RPM case: Y = X0*X1/5 (§4.4 cause (ii)).
  const auto dataset = make_dataset(
      2, [](double x0, double x1) { return x0 * x1 / 5.0; });
  const auto fit = fit_linear(dataset);
  ASSERT_TRUE(fit.has_value());
  const auto truth = [](std::span<const double> xs) {
    return xs[0] * xs[1] / 5.0;
  };
  EXPECT_GT(max_relative_error(*fit, dataset, truth), 0.10);
}

TEST(Polynomial, FitsProductViaCrossTerm) {
  const auto dataset = make_dataset(
      2, [](double x0, double x1) { return x0 * x1 / 5.0; });
  const auto fit = fit_polynomial(dataset);
  ASSERT_TRUE(fit.has_value());
  const auto truth = [](std::span<const double> xs) {
    return xs[0] * xs[1] / 5.0;
  };
  EXPECT_LT(mean_relative_error(*fit, dataset, truth), 0.01);
}

TEST(Polynomial, FitsQuadratic) {
  const auto dataset = make_dataset(
      1, [](double x, double) { return 0.004 * x * x + 2.0; });
  const auto fit = fit_polynomial(dataset);
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(fit->mae, 1e-6);
}

TEST(Baselines, OutliersCorruptLeastSquares) {
  // The §4.4 contrast: one gross OCR outlier shifts a plain LS fit
  // measurably.
  auto dataset =
      make_dataset(1, [](double x, double) { return 2.0 * x; }, 30);
  dataset.points[5].y *= 100.0;  // decimal-drop outlier
  const auto fit = fit_linear(dataset);
  ASSERT_TRUE(fit.has_value());
  const auto truth = [](std::span<const double> xs) { return 2.0 * xs[0]; };
  EXPECT_GT(mean_relative_error(*fit, dataset, truth), 0.03);
}

TEST(FitResult, PredictUsesChosenBasis) {
  const auto dataset = make_dataset(
      2, [](double x0, double x1) { return 1.0 + x0 + x1 + x0 * x1; });
  const auto fit = fit_polynomial(dataset);
  ASSERT_TRUE(fit.has_value());
  const std::vector<double> x{2.0, 3.0};
  EXPECT_NEAR(fit->predict(x), 1.0 + 2.0 + 3.0 + 6.0, 1e-6);
}

TEST(FitResult, FormulaRendering) {
  const auto dataset =
      make_dataset(1, [](double x, double) { return 2.0 * x + 1.0; });
  const auto fit = fit_linear(dataset);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NE(fit->formula.find("Y ="), std::string::npos);
  EXPECT_NE(fit->formula.find("X"), std::string::npos);
}

TEST(FitResult, TooFewPointsRejected) {
  correlate::Dataset dataset;
  dataset.n_vars = 1;
  dataset.points.push_back(correlate::DataPoint{{1.0}, 2.0});
  EXPECT_EQ(fit_linear(dataset), std::nullopt);
}

}  // namespace
}  // namespace dpr::regress
