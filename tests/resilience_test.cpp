// Stateful-failure robustness (ISSUE 4): S3 session timers, spontaneous
// ECU reboots, security-access lockout, the diagtool session supervisor,
// the cooperative phase watchdog, and checkpoint/resume equivalence at
// the campaign and fleet level.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "can/bus.hpp"
#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/fleet.hpp"
#include "isotp/endpoint.hpp"
#include "kwp/server.hpp"
#include "uds/client.hpp"
#include "uds/server.hpp"
#include "util/checkpoint.hpp"
#include "util/rng.hpp"
#include "util/watchdog.hpp"

namespace dpr {
namespace {

// --- TesterPresent suppress bit -------------------------------------------

TEST(TesterPresent, SuppressBitYieldsNoResponse) {
  uds::Server server;
  EXPECT_EQ(util::to_hex(server.handle(util::from_hex("3E 00"))), "7E 00");
  EXPECT_TRUE(server.handle(util::from_hex("3E 80")).empty());
}

TEST(TesterPresent, KwpResponseRequiredByteSelectsReply) {
  kwp::Server server;
  EXPECT_EQ(util::to_hex(server.handle(util::Bytes{0x3E, 0x01})), "7E");
  EXPECT_TRUE(server.handle(util::Bytes{0x3E, 0x02}).empty());
}

// --- S3 session timer ------------------------------------------------------

class S3Test : public ::testing::Test {
 protected:
  S3Test() {
    server_.add_io_did(0x0950,
                       [](uds::IoControlParameter,
                          std::span<const std::uint8_t> state)
                           -> std::optional<util::Bytes> {
                         return util::Bytes(state.begin(), state.end());
                       });
    uds::Server::SessionProfile profile;
    profile.s3_timeout = 1 * util::kSecond;
    server_.enable_sessions(profile, clock_);
  }
  util::SimClock clock_;
  uds::Server server_;
};

TEST_F(S3Test, InactivityDropsBackToDefaultSession) {
  server_.handle(util::from_hex("10 03"));
  EXPECT_EQ(server_.active_session(), 0x03);
  clock_.advance(2 * util::kSecond);
  // The expiry is observed lazily at the next request, which then runs
  // against the default session: the gated service is rejected with
  // serviceNotSupportedInActiveSession (only when timers are armed).
  const auto resp = server_.handle(util::from_hex("2F 09 50 02"));
  EXPECT_EQ(util::to_hex(resp), "7F 2F 7F");
  EXPECT_EQ(server_.active_session(), 0x01);
  EXPECT_EQ(server_.s3_expiries(), 1u);
}

TEST_F(S3Test, TesterPresentKeepaliveHoldsTheSession) {
  server_.handle(util::from_hex("10 03"));
  for (int i = 0; i < 10; ++i) {
    clock_.advance(500 * util::kMillisecond);  // under the 1 s S3 budget
    server_.handle(util::from_hex("3E 80"));   // suppressed keepalive
  }
  EXPECT_EQ(server_.active_session(), 0x03);
  EXPECT_EQ(server_.s3_expiries(), 0u);
  const auto resp = server_.handle(util::from_hex("2F 09 50 02"));
  EXPECT_EQ(util::to_hex(resp), "6F 09 50 02");
}

TEST(S3Kwp, StartedSessionExpiresAfterInactivity) {
  util::SimClock clock;
  kwp::Server server;
  kwp::Server::SessionProfile profile;
  profile.s3_timeout = 1 * util::kSecond;
  server.enable_sessions(profile, clock);
  server.handle(util::Bytes{0x10, 0x89});
  EXPECT_TRUE(server.session_started());
  clock.advance(2 * util::kSecond);
  server.handle(util::Bytes{0x3E, 0x01});  // the lazy expiry is observed here
  EXPECT_FALSE(server.session_started());
  EXPECT_EQ(server.s3_expiries(), 1u);
}

// --- Security-access lockout ----------------------------------------------

TEST(SecurityLockout, AttemptLimitThenDelayTimerUnlock) {
  util::SimClock clock;
  uds::Server server;
  server.enable_security([](const util::Bytes& seed) {
    util::Bytes key = seed;
    for (auto& b : key) b ^= 0xA5;
    return key;
  });
  uds::Server::SessionProfile profile;
  profile.max_key_attempts = 3;
  profile.lockout_delay = 10 * util::kSecond;
  server.enable_sessions(profile, clock);

  // Two wrong keys: plain invalidKey. The third trips the attempt limit.
  for (int attempt = 0; attempt < 3; ++attempt) {
    server.handle(util::from_hex("27 01"));
    const auto resp = server.handle(util::from_hex("27 02 00 00 00 00"));
    EXPECT_EQ(util::to_hex(resp), attempt < 2 ? "7F 27 35" : "7F 27 36");
  }
  EXPECT_TRUE(server.locked_out());

  // During the delay both seed and key are refused with 0x37.
  EXPECT_EQ(util::to_hex(server.handle(util::from_hex("27 01"))), "7F 27 37");
  EXPECT_EQ(util::to_hex(server.handle(util::from_hex("27 02 00 00 00 00"))),
            "7F 27 37");

  // After the delay the handshake works again, and a correct key unlocks.
  clock.advance(11 * util::kSecond);
  EXPECT_FALSE(server.locked_out());
  const auto seed_resp = server.handle(util::from_hex("27 01"));
  ASSERT_EQ(seed_resp.size(), 6u);
  util::Bytes key(seed_resp.begin() + 2, seed_resp.end());
  for (auto& b : key) b ^= 0xA5;
  util::Bytes send_key{0x27, 0x02};
  send_key.insert(send_key.end(), key.begin(), key.end());
  EXPECT_EQ(util::to_hex(server.handle(send_key)), "67 02");
  EXPECT_TRUE(server.unlocked());
}

TEST(SecurityLockout, KwpMirrorsTheUdsAttemptLimitAndDelayTimer) {
  util::SimClock clock;
  kwp::Server server;
  server.enable_security([](const util::Bytes& seed) {
    util::Bytes key = seed;
    for (auto& b : key) b ^= 0xA5;
    return key;
  });
  kwp::Server::SessionProfile profile;
  profile.max_key_attempts = 3;
  profile.lockout_delay = 10 * util::kSecond;
  server.enable_sessions(profile, clock);

  // KWP 2000 shares the ISO 14229 NRC values: invalidKey twice, then
  // exceedNumberOfAttempts, then requiredTimeDelayNotExpired for both
  // halves of the handshake until the delay runs out.
  for (int attempt = 0; attempt < 3; ++attempt) {
    server.handle(util::Bytes{0x27, 0x01});
    const auto resp = server.handle(util::Bytes{0x27, 0x02, 0, 0, 0, 0});
    EXPECT_EQ(util::to_hex(resp), attempt < 2 ? "7F 27 35" : "7F 27 36");
  }
  EXPECT_TRUE(server.locked_out());
  EXPECT_EQ(util::to_hex(server.handle(util::Bytes{0x27, 0x01})), "7F 27 37");
  EXPECT_EQ(util::to_hex(server.handle(util::Bytes{0x27, 0x02, 0, 0, 0, 0})),
            "7F 27 37");

  clock.advance(11 * util::kSecond);
  EXPECT_FALSE(server.locked_out());
  const auto seed_resp = server.handle(util::Bytes{0x27, 0x01});
  ASSERT_EQ(seed_resp.size(), 6u);
  util::Bytes key(seed_resp.begin() + 2, seed_resp.end());
  for (auto& b : key) b ^= 0xA5;
  util::Bytes send_key{0x27, 0x02};
  send_key.insert(send_key.end(), key.begin(), key.end());
  EXPECT_EQ(util::to_hex(server.handle(send_key)), "67 02");
  EXPECT_TRUE(server.unlocked());
}

// --- ECU resets under ISO-TP ----------------------------------------------

struct ResetRunResult {
  int successes = 0;
  std::uint64_t resets = 0;
  std::vector<util::Bytes> payloads;
};

ResetRunResult run_reset_reads(std::uint64_t seed) {
  util::SimClock clock;
  can::CanBus bus(clock);
  isotp::Endpoint tester_link(
      bus, isotp::EndpointConfig{can::CanId{0x7E0, false},
                                 can::CanId{0x7E8, false}});
  isotp::Endpoint ecu_link(
      bus, isotp::EndpointConfig{can::CanId{0x7E8, false},
                                 can::CanId{0x7E0, false}});
  uds::Server server;
  server.add_did(0xF490, 20, [] { return util::Bytes(20, 0xAA); });
  uds::Server::ResetProfile profile;
  profile.reset_rate = 0.35;
  profile.boot_time = 300 * util::kMillisecond;
  server.enable_resets(profile, clock, util::CounterRng(seed, 0));
  server.bind(ecu_link);

  uds::Client client(tester_link, [&] { bus.deliver_pending(); },
                     util::TransactPolicy::resilient(), &clock);
  ResetRunResult result;
  for (int i = 0; i < 30; ++i) {
    const auto resp = client.transact(util::from_hex("22 F4 90"));
    if (resp) {
      ++result.successes;
      result.payloads.push_back(*resp);
    }
    clock.advance(400 * util::kMillisecond);  // rides out any boot window
  }
  result.resets = server.resets();
  return result;
}

TEST(EcuReset, MultiFrameReadsSurviveRebootsAndReplayBitIdentically) {
  const auto a = run_reset_reads(0xBEEF);
  EXPECT_GT(a.successes, 0);
  EXPECT_GT(a.resets, 0u);
  util::Bytes expected = util::from_hex("62 F4 90");
  expected.insert(expected.end(), 20, 0xAA);
  for (const auto& payload : a.payloads) {
    EXPECT_EQ(util::to_hex(payload), util::to_hex(expected));
  }
  const auto b = run_reset_reads(0xBEEF);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.resets, b.resets);
}

// --- CheckpointStore -------------------------------------------------------

class CheckpointDir : public ::testing::Test {
 protected:
  CheckpointDir()
      : dir_((std::filesystem::temp_directory_path() /
              ("dpr_ckpt_" +
               std::to_string(static_cast<unsigned>(::getpid()))))
                 .string()) {
    std::filesystem::remove_all(dir_);
  }
  ~CheckpointDir() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(CheckpointDir, SaveLoadRoundTrip) {
  core::CheckpointStore store(dir_);
  const util::Bytes payload{0x01, 0x02, 0x03, 0xFF};
  ASSERT_TRUE(store.save(3, 0x5EED, 0xD16E57, 4, payload));
  const auto loaded = store.load(3, 0x5EED, 0xD16E57);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->phase, 4u);
  EXPECT_EQ(loaded->payload, payload);
  store.remove(3, 0x5EED, 0xD16E57);
  EXPECT_FALSE(store.load(3, 0x5EED, 0xD16E57).has_value());
}

TEST_F(CheckpointDir, KeyMismatchNeverResumes) {
  core::CheckpointStore store(dir_);
  ASSERT_TRUE(store.save(3, 0x5EED, 0xD16E57, 1, util::Bytes{0xAB}));
  EXPECT_FALSE(store.load(4, 0x5EED, 0xD16E57).has_value());  // other car
  EXPECT_FALSE(store.load(3, 0x5EEE, 0xD16E57).has_value());  // other seed
  EXPECT_FALSE(store.load(3, 0x5EED, 0xD16E58).has_value());  // other opts
}

TEST_F(CheckpointDir, CorruptionAndTruncationRejected) {
  core::CheckpointStore store(dir_);
  const util::Bytes payload(64, 0x5A);
  ASSERT_TRUE(store.save(1, 2, 3, 0, payload));
  const auto path = store.path_for(1, 2, 3);
  auto data = util::read_file(path);
  ASSERT_TRUE(data.has_value());

  auto corrupted = *data;
  corrupted[corrupted.size() / 2] ^= 0x01;
  ASSERT_TRUE(util::write_file_atomic(path, corrupted));
  EXPECT_FALSE(store.load(1, 2, 3).has_value());

  auto truncated = *data;
  truncated.resize(truncated.size() - 5);  // crash mid-write
  ASSERT_TRUE(util::write_file_atomic(path, truncated));
  EXPECT_FALSE(store.load(1, 2, 3).has_value());

  ASSERT_TRUE(util::write_file_atomic(path, *data));
  EXPECT_TRUE(store.load(1, 2, 3).has_value());  // pristine file still loads
}

TEST(RngState, RoundTripContinuesTheStream) {
  util::Rng rng(123);
  for (int i = 0; i < 17; ++i) rng();
  const auto state = rng.state();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 8; ++i) expected.push_back(rng());
  util::Rng other(1);
  other.restore(state);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(other(), expected[i]);
}

// --- Watchdog --------------------------------------------------------------

TEST(Watchdog, PollThrowsPhaseTimeoutAfterBudget) {
  util::Watchdog watchdog;
  watchdog.poll();  // unarmed: never throws
  watchdog.arm("associate", 0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  try {
    watchdog.poll();
    FAIL() << "expected DeadlineExceeded";
  } catch (const util::DeadlineExceeded& e) {
    EXPECT_STREQ(e.what(), "phase_timeout(associate)");
    EXPECT_EQ(e.phase(), "associate");
  }
  watchdog.disarm();
  watchdog.poll();  // disarmed again: quiet
}

TEST(Watchdog, SimTimeBudgetThrowsTheSamePhaseTimeout) {
  util::SimClock clock;
  util::Watchdog watchdog;
  // No wall-clock deadline at all: only the sim-time budget is armed.
  watchdog.arm("collect", 0.0, 2.0, &clock);
  clock.advance(1 * util::kSecond);
  watchdog.poll();  // under budget: quiet
  clock.advance(2 * util::kSecond);
  try {
    watchdog.poll();
    FAIL() << "expected DeadlineExceeded";
  } catch (const util::DeadlineExceeded& e) {
    EXPECT_STREQ(e.what(), "phase_timeout(collect)");
    EXPECT_EQ(e.phase(), "collect");
  }
}

TEST(Watchdog, SharedTokenObservesCancelAcrossCopies) {
  util::CancelToken token;
  util::CancelToken copy = token;
  EXPECT_FALSE(copy.expired());
  token.cancel();
  EXPECT_TRUE(copy.expired());
  copy.arm_after(3600.0);  // re-arm clears the cancel
  EXPECT_FALSE(token.expired());
}

// --- Campaign checkpoint/resume -------------------------------------------

core::CampaignOptions small_options() {
  core::CampaignOptions options;
  options.live_window = 4 * util::kSecond;
  options.gp.population = 48;
  options.gp.max_generations = 8;
  return options;
}

std::string run_fresh(vehicle::CarId car, const core::CampaignOptions& base) {
  core::Campaign campaign(car, base);
  campaign.run();
  return core::report_signature(campaign.report());
}

TEST_F(CheckpointDir, ResumedCampaignMatchesFreshAtEveryPhaseBoundary) {
  const auto base = small_options();
  const std::string fresh = run_fresh(vehicle::CarId::kA, base);
  for (const int stop_after : {0, 2, 4, 5}) {
    auto interrupted = base;
    interrupted.checkpoint_dir = dir_;
    interrupted.stop_after_phase = stop_after;
    core::Campaign first(vehicle::CarId::kA, interrupted);
    first.run();  // leaves a checkpoint at the phase boundary

    auto resumed_options = base;
    resumed_options.checkpoint_dir = dir_;
    resumed_options.resume = true;
    core::Campaign resumed(vehicle::CarId::kA, resumed_options);
    resumed.run();
    EXPECT_EQ(core::report_signature(resumed.report()), fresh)
        << "stopped after phase " << stop_after;
  }
}

TEST_F(CheckpointDir, OptionChangeInvalidatesTheCheckpoint) {
  auto interrupted = small_options();
  interrupted.checkpoint_dir = dir_;
  interrupted.stop_after_phase = 1;
  core::Campaign first(vehicle::CarId::kA, interrupted);
  first.run();

  // Different semantic options -> different digest -> full fresh run,
  // which must still produce that option set's own fresh signature.
  auto changed = small_options();
  changed.ocr_noise = false;
  changed.checkpoint_dir = dir_;
  changed.resume = true;
  core::Campaign resumed(vehicle::CarId::kA, changed);
  resumed.run();
  auto plain = small_options();
  plain.ocr_noise = false;
  EXPECT_EQ(core::report_signature(resumed.report()),
            run_fresh(vehicle::CarId::kA, plain));
}

TEST_F(CheckpointDir, FleetResumeIsThreadCountInvariant) {
  const std::vector<vehicle::CarId> cars{vehicle::CarId::kA,
                                         vehicle::CarId::kB};
  core::FleetOptions base;
  base.campaign = small_options();
  base.fleet_threads = 1;
  const auto fresh = core::fleet_signature(core::FleetRunner(base).run(cars));

  for (const std::size_t threads : {1u, 2u, 8u}) {
    std::filesystem::remove_all(dir_);
    core::FleetOptions interrupted = base;
    interrupted.fleet_threads = threads;
    interrupted.campaign.checkpoint_dir = dir_;
    interrupted.campaign.stop_after_phase = 3;
    core::FleetRunner(interrupted).run(cars);

    core::FleetOptions resumed = base;
    resumed.fleet_threads = threads;
    resumed.campaign.checkpoint_dir = dir_;
    resumed.campaign.resume = true;
    const auto summary = core::FleetRunner(resumed).run(cars);
    EXPECT_EQ(core::fleet_signature(summary), fresh)
        << threads << " threads";
    EXPECT_EQ(summary.cars_failed(), 0u);
  }
}

// --- Watchdog + stall in the fleet ----------------------------------------

TEST(FleetWatchdog, HungPhaseDegradesToPhaseTimeoutSlot) {
  core::FleetOptions options;
  options.fleet_threads = 1;
  options.quarantine_retry = false;  // a stalled car would stall twice
  options.campaign = small_options();
  options.campaign.live_window = 2 * util::kSecond;
  options.campaign.run_inference = false;
  options.campaign.run_baselines = false;
  options.campaign.stall_phase = "associate";
  options.campaign.phase_deadline_s = 1.0;
  const auto summary =
      core::FleetRunner(options).run({vehicle::CarId::kA});
  ASSERT_EQ(summary.reports.size(), 1u);
  EXPECT_FALSE(summary.reports[0].completed);
  EXPECT_NE(summary.reports[0].failure_reason.find("phase_timeout(associate)"),
            std::string::npos);
}

TEST(FleetWatchdog, QuarantineRetryAppendsTheSecondReason) {
  core::FleetOptions options;
  options.fleet_threads = 1;
  options.campaign = small_options();
  options.campaign.live_window = 2 * util::kSecond;
  options.campaign.run_inference = false;
  options.campaign.run_baselines = false;
  options.campaign.stall_phase = "assemble";
  options.campaign.phase_deadline_s = 0.5;
  const auto summary =
      core::FleetRunner(options).run({vehicle::CarId::kA});
  ASSERT_EQ(summary.reports.size(), 1u);
  EXPECT_FALSE(summary.reports[0].completed);
  EXPECT_NE(summary.reports[0].failure_reason.find(
                "phase_timeout(assemble); retry: phase_timeout(assemble)"),
            std::string::npos);
}

TEST(FleetWatchdog, SimBudgetOverrunDegradesToPhaseTimeoutSlot) {
  core::FleetOptions options;
  options.fleet_threads = 1;
  options.quarantine_retry = false;
  options.campaign = small_options();
  options.campaign.run_inference = false;
  options.campaign.run_baselines = false;
  // The 4 s live window must burn through a 1 s sim budget in collect,
  // even though the phase makes perfectly healthy wall-clock progress.
  options.campaign.phase_sim_budget_s = 1.0;
  const auto summary =
      core::FleetRunner(options).run({vehicle::CarId::kA});
  ASSERT_EQ(summary.reports.size(), 1u);
  EXPECT_FALSE(summary.reports[0].completed);
  EXPECT_NE(summary.reports[0].failure_reason.find("phase_timeout(collect)"),
            std::string::npos);
}

// --- OSEK network management in a campaign --------------------------------

core::CampaignOptions nm_options() {
  auto options = small_options();
  options.faults.nm = true;
  // Aggressive enough that the bus sleeps during real campaign gaps.
  options.faults.nm_sleep_timeout = 400 * util::kMillisecond;
  return options;
}

TEST(NmCampaign, AwareToolRecoversSleepLossesAndReplaysBitIdentically) {
  const auto options = nm_options();
  core::Campaign aware(vehicle::CarId::kA, options);
  aware.run();
  const auto& report = aware.report();
  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(report.nm_enabled);
  // The ring really slept the bus out from under the tool, the tool
  // noticed, and at least one retry after re-waking succeeded.
  EXPECT_GT(report.nm.sleeps, 0u);
  EXPECT_GT(report.session_stats.bus_sleeps, 0u);
  EXPECT_GT(report.session_stats.sleep_recoveries, 0u);

  core::Campaign again(vehicle::CarId::kA, options);
  again.run();
  EXPECT_EQ(core::report_signature(again.report()),
            core::report_signature(report));
}

TEST(NmCampaign, VetoHoldoutKeepsTheBusAwakeDeterministically) {
  // Same NM profile that demonstrably naps the bus (the aware-tool test
  // above asserts sleeps > 0), plus one ECU that never acks sleep: the
  // campaign must see a bus that never sleeps, and must replay
  // bit-identically.
  auto options = nm_options();
  options.faults.nm_veto_address = 2;
  core::Campaign veto(vehicle::CarId::kA, options);
  veto.run();
  const auto& report = veto.report();
  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(report.nm_enabled);
  EXPECT_EQ(report.nm.sleeps, 0u);
  EXPECT_EQ(report.nm.frames_lost_to_sleep, 0u);
  EXPECT_EQ(report.session_stats.bus_sleeps, 0u);
  EXPECT_EQ(report.session_stats.sleep_recoveries, 0u);

  core::Campaign again(vehicle::CarId::kA, options);
  again.run();
  EXPECT_EQ(core::report_signature(again.report()),
            core::report_signature(report));

  // The veto is a semantic option: it keys its own checkpoints via the
  // armed-knob fold, while the legacy-era digest (and with it the v2/v3
  // migration search path) is deliberately untouched.
  const core::Campaign plain(vehicle::CarId::kA, nm_options());
  EXPECT_NE(veto.checkpoint_options_digest(),
            plain.checkpoint_options_digest());
  EXPECT_EQ(veto.checkpoint_options_digest(/*legacy=*/true),
            plain.checkpoint_options_digest(/*legacy=*/true));
}

TEST(NmCampaign, ObliviousToolLosesStrictlyMoreFramesToSleep) {
  const auto options = nm_options();
  core::Campaign aware(vehicle::CarId::kA, options);
  aware.run();

  auto ablated = options;
  ablated.nm_oblivious = true;
  core::Campaign oblivious(vehicle::CarId::kA, ablated);
  oblivious.run();
  const auto& obl = oblivious.report();
  EXPECT_TRUE(obl.nm_enabled);
  // No wakeups, no sleep detection: every nap swallows traffic for good.
  EXPECT_EQ(obl.session_stats.sleep_recoveries, 0u);
  EXPECT_GT(obl.nm.sleeps, 0u);
  EXPECT_GT(obl.nm.frames_lost_to_sleep,
            aware.report().nm.frames_lost_to_sleep);
}

TEST_F(CheckpointDir, NmFleetResumeIsThreadCountInvariant) {
  const std::vector<vehicle::CarId> cars{vehicle::CarId::kA,
                                         vehicle::CarId::kB};
  core::FleetOptions base;
  base.campaign = nm_options();
  base.fleet_threads = 1;
  const auto fresh = core::fleet_signature(core::FleetRunner(base).run(cars));

  for (const std::size_t threads : {1u, 2u, 8u}) {
    std::filesystem::remove_all(dir_);
    core::FleetOptions interrupted = base;
    interrupted.fleet_threads = threads;
    interrupted.campaign.checkpoint_dir = dir_;
    interrupted.campaign.stop_after_phase = 3;
    core::FleetRunner(interrupted).run(cars);

    core::FleetOptions resumed = base;
    resumed.fleet_threads = threads;
    resumed.campaign.checkpoint_dir = dir_;
    resumed.campaign.resume = true;
    const auto summary = core::FleetRunner(resumed).run(cars);
    EXPECT_EQ(core::fleet_signature(summary), fresh)
        << threads << " threads";
    EXPECT_EQ(summary.cars_failed(), 0u);
  }
}

// --- Stateful faults in a campaign ----------------------------------------

TEST(StatefulCampaign, SessionFaultsAloneDrawNothingFromTheBusStream) {
  auto options = small_options();
  options.faults.session_faults = true;
  core::Campaign campaign(vehicle::CarId::kA, options);
  campaign.run();
  const auto& report = campaign.report();
  EXPECT_TRUE(report.completed);
  // No wire-fault injector is armed: zero draws, zero bus bookkeeping.
  EXPECT_EQ(report.bus_faults.delivered, 0u);
  // The supervisor really ran its keepalive cadence.
  EXPECT_GT(report.session_stats.keepalives, 0u);
}

TEST(StatefulCampaign, ResetStormIsSurvivedAndReplaysBitIdentically) {
  auto options = small_options();
  options.faults.reset_rate = 0.02;
  options.faults.session_faults = true;
  std::string reference;
  for (int run = 0; run < 2; ++run) {
    core::Campaign campaign(vehicle::CarId::kA, options);
    campaign.run();
    const auto& report = campaign.report();
    EXPECT_TRUE(report.completed);
    EXPECT_GT(report.ecu_resets, 0u);
    const auto signature = core::report_signature(report);
    if (reference.empty()) {
      reference = signature;
    } else {
      EXPECT_EQ(signature, reference);
    }
  }
}

}  // namespace
}  // namespace dpr
