#include <gtest/gtest.h>

#include "cps/camera.hpp"
#include "cps/ocr.hpp"
#include "screenshot/extract.hpp"
#include "screenshot/filter.hpp"

namespace dpr::screenshot {
namespace {

cps::Screenshot make_frame(util::SimTime t,
                           std::initializer_list<
                               std::pair<std::string, std::string>> rows) {
  cps::Screenshot shot;
  shot.timestamp = t;
  shot.width = 1000;
  shot.height = 800;
  int row = 0;
  for (const auto& [label, value] : rows) {
    cps::TextRegion name;
    name.truth = label;
    name.bounds = {40, 60 + 40 * row, 400, 36};
    name.row = row;
    shot.text_regions.push_back(name);
    cps::TextRegion val;
    val.truth = value;
    val.bounds = {600, 60 + 40 * row, 200, 30};
    val.row = row;
    shot.text_regions.push_back(val);
    ++row;
  }
  return shot;
}

TEST(Extract, PairsLabelsAndValuesByRow) {
  cps::VideoRecording video;
  video.frames.push_back(make_frame(
      1000, {{"Engine Speed (rpm)", "3012.5"}, {"Door Status", "ON"}}));
  cps::OcrEngine ocr(util::Rng(1), /*noisy=*/false);
  const auto samples = extract_samples(video, ocr);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "Engine Speed");  // unit stripped
  EXPECT_EQ(samples[0].row, 0);
  ASSERT_TRUE(samples[0].value.has_value());
  EXPECT_DOUBLE_EQ(*samples[0].value, 3012.5);
  EXPECT_EQ(samples[1].name, "Door Status");
  EXPECT_EQ(samples[1].value, std::nullopt);  // enum text
}

TEST(Extract, TimestampsComeFromFrames) {
  cps::VideoRecording video;
  video.frames.push_back(make_frame(1111, {{"A", "1.0"}}));
  video.frames.push_back(make_frame(2222, {{"A", "2.0"}}));
  cps::OcrEngine ocr(util::Rng(1), false);
  const auto samples = extract_samples(video, ocr);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].timestamp, 1111);
  EXPECT_EQ(samples[1].timestamp, 2222);
}

TEST(Extract, ParseValueRejectsPartialNumbers) {
  EXPECT_EQ(parse_value("12.5x"), std::nullopt);
  EXPECT_EQ(parse_value(""), std::nullopt);
  EXPECT_EQ(parse_value("ON"), std::nullopt);
  ASSERT_TRUE(parse_value("-40.5").has_value());
  EXPECT_DOUBLE_EQ(*parse_value("-40.5"), -40.5);
}

TEST(Extract, StripUnitOnlyWhenParenthesized) {
  EXPECT_EQ(strip_unit("Engine Speed (rpm)"), "Engine Speed");
  EXPECT_EQ(strip_unit("Engine Speed"), "Engine Speed");
}

TEST(Filter, RangeForKnownTypes) {
  EXPECT_LE(range_for("Engine Speed").hi, 20000.0);
  EXPECT_LE(range_for("Vehicle Speed").hi, 400.0);
  EXPECT_LE(range_for("Coolant Temperature").hi, 1200.0);
  EXPECT_GE(range_for("Something Exotic").hi, 1e6);
}

TEST(Filter, Stage1RejectsOutOfRangeValues) {
  std::vector<UiSample> samples;
  // "25.0" misread as "2500" km/h — the paper's decimal-drop example.
  samples.push_back(UiSample{1000, 0, "Vehicle Speed", "2500", 2500.0});
  samples.push_back(UiSample{2000, 0, "Vehicle Speed", "25.0", 25.0});
  FilterStats stats;
  const auto kept = filter_samples(samples, &stats);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_DOUBLE_EQ(*kept[0].value, 25.0);
  EXPECT_EQ(stats.range_rejected, 1u);
}

TEST(Filter, Stage2RemovesStatisticalOutliers) {
  std::vector<UiSample> samples;
  for (int i = 0; i < 20; ++i) {
    samples.push_back(UiSample{i * 1000, 0, "Oil Pressure", "x",
                               200.0 + i});
  }
  // An 11.4 -> 4 style drop: in range, but far from the series.
  samples.push_back(UiSample{30000, 0, "Oil Pressure", "4", 4.0});
  FilterStats stats;
  const auto kept = filter_samples(samples, &stats);
  EXPECT_EQ(kept.size(), 20u);
  EXPECT_EQ(stats.outlier_rejected, 1u);
}

TEST(Filter, NonNumericSamplesPassThrough) {
  std::vector<UiSample> samples{
      UiSample{1000, 0, "Door Status", "ON", std::nullopt}};
  const auto kept = filter_samples(samples);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].value_text, "ON");
}

TEST(Filter, OutlierMaskHandlesConstantSeries) {
  const std::vector<double> constant{5.0, 5.0, 5.0, 5.0, 5.0};
  const auto mask = outlier_mask(constant, 10.0);
  for (bool keep : mask) EXPECT_TRUE(keep);
  // A constant series with one excursion.
  const std::vector<double> spiked{5.0, 5.0, 5.0, 5.0, 50.0};
  const auto spiked_mask = outlier_mask(spiked, 10.0);
  EXPECT_FALSE(spiked_mask[4]);
}

TEST(Filter, SmallSeriesNotFiltered) {
  const std::vector<double> tiny{1.0, 100.0};
  const auto mask = outlier_mask(tiny, 10.0);
  EXPECT_TRUE(mask[0]);
  EXPECT_TRUE(mask[1]);
}

TEST(Filter, SeparateSignalsFilteredIndependently) {
  std::vector<UiSample> samples;
  for (int i = 0; i < 10; ++i) {
    samples.push_back(UiSample{i * 1000, 0, "Oil Pressure", "x", 300.0});
    samples.push_back(UiSample{i * 1000, 1, "Battery Voltage", "x", 12.6});
  }
  // 300 would be an outlier for the voltage series but is normal for the
  // pressure series.
  const auto kept = filter_samples(samples);
  EXPECT_EQ(kept.size(), 20u);
}

}  // namespace
}  // namespace dpr::screenshot
