#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace dpr::util {
namespace {

TEST(ThreadPool, ResolveMapsZeroToHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve(0), 1u);
  EXPECT_EQ(ThreadPool::resolve(1), 1u);
  EXPECT_EQ(ThreadPool::resolve(6), 6u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelChunksDecompositionIsContiguousAndComplete) {
  ThreadPool pool(3);
  std::vector<int> covered(101, 0);
  std::atomic<std::size_t> chunks_seen{0};
  pool.parallel_chunks(101, 7,
                       [&](std::size_t, std::size_t begin, std::size_t end) {
                         chunks_seen.fetch_add(1);
                         for (std::size_t i = begin; i < end; ++i) {
                           covered[i] += 1;
                         }
                       });
  EXPECT_EQ(chunks_seen.load(), 7u);
  EXPECT_EQ(std::accumulate(covered.begin(), covered.end(), 0), 101);
}

TEST(ThreadPool, ChunkBoundariesIndependentOfWorkerCount) {
  // The deterministic-replay contract: chunk c covers the same index
  // range no matter how many workers execute the loop.
  auto boundaries = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<std::pair<std::size_t, std::size_t>> out(5);
    std::mutex mutex;
    pool.parallel_chunks(
        97, 5, [&](std::size_t c, std::size_t begin, std::size_t end) {
          std::lock_guard<std::mutex> lock(mutex);
          out[c] = {begin, end};
        });
    return out;
  };
  EXPECT_EQ(boundaries(1), boundaries(4));
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 13) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Outer iterations run on pool workers and issue their own loops on the
  // same pool; caller participation guarantees forward progress.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&total](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, WorkStealingDrainsSkewedLoad) {
  // One chunk is far heavier than the rest; the loop still completes and
  // covers everything (idle workers steal the queued helpers' shares).
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  pool.parallel_for(64, [&sum](std::size_t i) {
    long local = 0;
    const long spins = i == 0 ? 200000 : 100;
    for (long k = 0; k < spins; ++k) local += k % 7;
    sum.fetch_add(local > 0 ? 1 : 1, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 64);
}

}  // namespace
}  // namespace dpr::util
