#include <gtest/gtest.h>

#include "can/bus.hpp"
#include "isotp/endpoint.hpp"
#include "uds/client.hpp"
#include "uds/message.hpp"
#include "uds/server.hpp"

namespace dpr::uds {
namespace {

TEST(Message, ReadDataRequestRoundTrip) {
  const std::vector<Did> dids{0xF40D, 0x1234};
  const auto payload = encode_read_data_by_identifier(dids);
  EXPECT_EQ(util::to_hex(payload), "22 F4 0D 12 34");
  const auto decoded = decode_read_data_request(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, dids);
}

TEST(Message, ReadDataRequestRejectsEmptyAndOddLength) {
  EXPECT_THROW(encode_read_data_by_identifier({}), std::invalid_argument);
  EXPECT_EQ(decode_read_data_request(util::from_hex("22 F4")), std::nullopt);
}

TEST(Message, ReadDataResponseMatchesPaperExample) {
  // §2.3.2: "22 F4 0D" -> "62 F4 0D 21".
  const std::vector<DataRecord> records{{0xF40D, {0x21}}};
  const auto payload = encode_read_data_response(records);
  EXPECT_EQ(util::to_hex(payload), "62 F4 0D 21");
}

TEST(Message, ReadDataResponseDecodeWithLengths) {
  const std::vector<Did> dids{0xF40D, 0xF41A};
  const std::vector<DataRecord> records{{0xF40D, {0x21}},
                                        {0xF41A, {0x01, 0xF4}}};
  const auto payload = encode_read_data_response(records);
  const auto decoded = decode_read_data_response(
      payload, dids, [](Did did) -> std::optional<std::size_t> {
        return did == 0xF40D ? 1 : 2;
      });
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[1].data, (util::Bytes{0x01, 0xF4}));
}

TEST(Message, ReadDataResponseRejectsWrongOrder) {
  const std::vector<DataRecord> records{{0xF41A, {0x01}}};
  const auto payload = encode_read_data_response(records);
  const std::vector<Did> expected{0xF40D};
  EXPECT_EQ(decode_read_data_response(
                payload, expected,
                [](Did) -> std::optional<std::size_t> { return 1; }),
            std::nullopt);
}

TEST(Message, IoControlMatchesPaperExample) {
  // §2.3.2: "2F 09 50 03 05 01 00 00" lights the left fog lamp for 5 s.
  const util::Bytes state{0x05, 0x01, 0x00, 0x00};
  const auto payload = encode_io_control(
      0x0950, IoControlParameter::kShortTermAdjustment, state);
  EXPECT_EQ(util::to_hex(payload), "2F 09 50 03 05 01 00 00");
  const auto decoded = decode_io_control_request(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->did, 0x0950);
  EXPECT_EQ(decoded->param, IoControlParameter::kShortTermAdjustment);
  EXPECT_EQ(decoded->control_state, state);
}

TEST(Message, NegativeResponseRoundTrip) {
  const auto payload = encode_negative_response(
      Service::kReadDataByIdentifier, Nrc::kRequestOutOfRange);
  EXPECT_EQ(util::to_hex(payload), "7F 22 31");
  const auto decoded = decode_negative_response(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->requested_sid, 0x22);
  EXPECT_EQ(decoded->nrc, Nrc::kRequestOutOfRange);
}

TEST(Message, PositiveResponseCheck) {
  EXPECT_TRUE(is_positive_response(util::from_hex("62 F4 0D 21"),
                                   Service::kReadDataByIdentifier));
  EXPECT_FALSE(is_positive_response(util::from_hex("7F 22 31"),
                                    Service::kReadDataByIdentifier));
}

TEST(Message, ServiceNames) {
  EXPECT_EQ(service_name(0x22), "ReadDataByIdentifier");
  EXPECT_EQ(service_name(0x2F), "InputOutputControlByIdentifier");
  EXPECT_EQ(nrc_name(Nrc::kSecurityAccessDenied), "securityAccessDenied");
}

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() {
    server_.add_did(0xF40D, 1, [] { return util::Bytes{0x21}; });
    server_.add_did(0xF41A, 2, [] { return util::Bytes{0x01, 0xF4}; });
    server_.add_io_did(0x0950,
                       [this](IoControlParameter param,
                              std::span<const std::uint8_t> state)
                           -> std::optional<util::Bytes> {
                         last_param_ = param;
                         return util::Bytes(state.begin(), state.end());
                       });
  }
  Server server_;
  IoControlParameter last_param_ = IoControlParameter::kReturnControlToEcu;
};

TEST_F(ServerTest, ReadSingleDid) {
  const auto resp = server_.handle(util::from_hex("22 F4 0D"));
  EXPECT_EQ(util::to_hex(resp), "62 F4 0D 21");
}

TEST_F(ServerTest, ReadMultipleDidsInRequestOrder) {
  const auto resp = server_.handle(util::from_hex("22 F4 1A F4 0D"));
  EXPECT_EQ(util::to_hex(resp), "62 F4 1A 01 F4 F4 0D 21");
}

TEST_F(ServerTest, UnknownDidYieldsRequestOutOfRange) {
  const auto resp = server_.handle(util::from_hex("22 DE AD"));
  EXPECT_EQ(util::to_hex(resp), "7F 22 31");
}

TEST_F(ServerTest, IoControlRequiresNonDefaultSession) {
  const auto rejected = server_.handle(util::from_hex("2F 09 50 02"));
  EXPECT_EQ(util::to_hex(rejected), "7F 2F 22");  // conditionsNotCorrect
  EXPECT_EQ(util::to_hex(server_.handle(util::from_hex("10 03"))).substr(0, 5),
            "50 03");
  const auto accepted = server_.handle(util::from_hex("2F 09 50 02"));
  EXPECT_EQ(util::to_hex(accepted), "6F 09 50 02");
  EXPECT_EQ(last_param_, IoControlParameter::kFreezeCurrentState);
}

TEST_F(ServerTest, TesterPresentAndUnknownService) {
  EXPECT_EQ(util::to_hex(server_.handle(util::from_hex("3E 00"))), "7E 00");
  EXPECT_EQ(util::to_hex(server_.handle(util::from_hex("99 00"))),
            "7F 99 11");
}

TEST_F(ServerTest, EcuResetRelocksAndResetsSession) {
  server_.handle(util::from_hex("10 03"));
  EXPECT_EQ(server_.active_session(), 0x03);
  server_.handle(util::from_hex("11 01"));
  EXPECT_EQ(server_.active_session(), 0x01);
}

TEST_F(ServerTest, SecurityAccessSeedKeyFlow) {
  server_.enable_security([](const util::Bytes& seed) {
    util::Bytes key = seed;
    for (auto& b : key) b ^= 0xA5;
    return key;
  });
  const auto seed_resp = server_.handle(util::from_hex("27 01"));
  ASSERT_EQ(seed_resp.size(), 6u);
  EXPECT_EQ(seed_resp[0], 0x67);
  util::Bytes key(seed_resp.begin() + 2, seed_resp.end());
  for (auto& b : key) b ^= 0xA5;
  util::Bytes send_key{0x27, 0x02};
  send_key.insert(send_key.end(), key.begin(), key.end());
  const auto key_resp = server_.handle(send_key);
  EXPECT_EQ(util::to_hex(key_resp), "67 02");
  EXPECT_TRUE(server_.unlocked());
}

TEST_F(ServerTest, SecurityAccessWrongKeyRejected) {
  server_.enable_security(
      [](const util::Bytes& seed) { return seed; });
  server_.handle(util::from_hex("27 01"));
  const auto resp = server_.handle(util::from_hex("27 02 00 00 00 00"));
  EXPECT_EQ(util::to_hex(resp), "7F 27 35");
  EXPECT_FALSE(server_.unlocked());
}

TEST_F(ServerTest, SendKeyWithoutSeedIsSequenceError) {
  server_.enable_security(
      [](const util::Bytes& seed) { return seed; });
  const auto resp = server_.handle(util::from_hex("27 02 12 34 56 78"));
  EXPECT_EQ(util::to_hex(resp), "7F 27 24");
}

TEST(ClientServer, EndToEndOverIsoTp) {
  util::SimClock clock;
  can::CanBus bus(clock);
  isotp::Endpoint tester_link(
      bus, isotp::EndpointConfig{can::CanId{0x7E0, false},
                                 can::CanId{0x7E8, false}});
  isotp::Endpoint ecu_link(
      bus, isotp::EndpointConfig{can::CanId{0x7E8, false},
                                 can::CanId{0x7E0, false}});
  Server server;
  server.add_did(0xF40D, 1, [] { return util::Bytes{0x21}; });
  // A long DID to force multi-frame responses.
  server.add_did(0xF490, 20, [] { return util::Bytes(20, 0xAA); });
  server.bind(ecu_link);

  Client client(tester_link, [&] { bus.deliver_pending(); });
  auto length_of = [](Did did) -> std::optional<std::size_t> {
    return did == 0xF40D ? std::optional<std::size_t>(1)
                         : std::optional<std::size_t>(20);
  };
  const std::vector<Did> dids{0xF40D, 0xF490};
  const auto records = client.read_data(dids, length_of);
  ASSERT_TRUE(records.has_value());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].data, util::Bytes{0x21});
  EXPECT_EQ((*records)[1].data, util::Bytes(20, 0xAA));
}

TEST(ClientServer, NegativeResponseSurfaced) {
  util::SimClock clock;
  can::CanBus bus(clock);
  isotp::Endpoint tester_link(
      bus, isotp::EndpointConfig{can::CanId{0x7E0, false},
                                 can::CanId{0x7E8, false}});
  isotp::Endpoint ecu_link(
      bus, isotp::EndpointConfig{can::CanId{0x7E8, false},
                                 can::CanId{0x7E0, false}});
  Server server;
  server.bind(ecu_link);
  Client client(tester_link, [&] { bus.deliver_pending(); });
  const auto resp = client.transact(util::from_hex("22 DE AD"));
  ASSERT_TRUE(resp.has_value());
  ASSERT_TRUE(client.last_negative().has_value());
  EXPECT_EQ(client.last_negative()->nrc, Nrc::kRequestOutOfRange);
}

/// Replies with a fixed scripted message on every send (malformed-peer
/// harness for the client's response-length guards).
class FixedReplyLink : public util::MessageLink {
 public:
  explicit FixedReplyLink(util::Bytes reply) : reply_(std::move(reply)) {}
  void send(std::span<const std::uint8_t>) override {
    ++sends;
    handler_(reply_);
  }
  void set_message_handler(Handler handler) override {
    handler_ = std::move(handler);
  }
  int sends = 0;

 private:
  util::Bytes reply_;
  Handler handler_;
};

TEST(ClientGuards, TruncatedSeedResponseRejectedWithoutSlicing) {
  // A positive 0x67 response that is too short to carry any seed bytes
  // must fail the unlock cleanly instead of slicing past the end.
  FixedReplyLink link(util::from_hex("67 01"));
  Client client(link, [] {});
  const bool unlocked = client.security_unlock(
      0x01, [](const util::Bytes& seed) { return seed; });
  EXPECT_FALSE(unlocked);
  EXPECT_EQ(link.sends, 1);  // never proceeded to sendKey
}

TEST(ClientGuards, TruncatedIoControlResponseYieldsNullopt) {
  // Positive SID + DID echo but no control-status bytes: too short for
  // the begin()+4 slice the parser takes.
  FixedReplyLink link(util::from_hex("6F 09 50"));
  Client client(link, [] {});
  const auto status = client.io_control(
      0x0950, IoControlParameter::kShortTermAdjustment, util::Bytes{0x05});
  EXPECT_FALSE(status.has_value());
}

TEST(ClientGuards, WellFormedIoControlResponseStillParses) {
  FixedReplyLink link(util::from_hex("6F 09 50 03 05"));
  Client client(link, [] {});
  const auto status = client.io_control(
      0x0950, IoControlParameter::kShortTermAdjustment, util::Bytes{0x05});
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(util::to_hex(*status), "05");
}

}  // namespace
}  // namespace dpr::uds

namespace dpr::uds {
namespace {

TEST(DtcServices, ReadByStatusMask) {
  Server server;
  server.add_dtc(0x030100, 0x20);
  server.add_dtc(0x012345, 0x08);
  const auto resp = server.handle(util::from_hex("19 02 FF"));
  ASSERT_GE(resp.size(), 3u);
  EXPECT_EQ(resp[0], 0x59);
  EXPECT_EQ((resp.size() - 3) / 4, 2u);  // two DTC records
  // Mask that matches only the second DTC.
  const auto masked = server.handle(util::from_hex("19 02 08"));
  EXPECT_EQ((masked.size() - 3) / 4, 1u);
}

TEST(DtcServices, ClearAllAndGroup) {
  Server server;
  server.add_dtc(0x030100);
  server.add_dtc(0x012345);
  EXPECT_EQ(util::to_hex(server.handle(util::from_hex("14 01 23 45"))),
            "54");
  EXPECT_EQ(server.dtcs().size(), 1u);
  EXPECT_EQ(util::to_hex(server.handle(util::from_hex("14 FF FF FF"))),
            "54");
  EXPECT_TRUE(server.dtcs().empty());
}

TEST(DtcServices, MalformedRequestsRejected) {
  Server server;
  EXPECT_EQ(util::to_hex(server.handle(util::from_hex("19 05 FF"))),
            "7F 19 12");
  EXPECT_EQ(util::to_hex(server.handle(util::from_hex("14 FF"))),
            "7F 14 13");
}

}  // namespace
}  // namespace dpr::uds
