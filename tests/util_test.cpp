#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <filesystem>
#include <limits>
#include <random>
#include <set>

#include "util/checkpoint.hpp"
#include "util/clock.hpp"
#include "util/counter_rng.hpp"
#include "util/crash.hpp"
#include "util/hex.hpp"
#include "util/philox.hpp"
#include "util/rng.hpp"
#include "util/simd_philox.hpp"
#include "util/stats.hpp"

namespace dpr::util {
namespace {

static_assert(std::uniform_random_bit_generator<CounterRng>);

TEST(CounterRng, DeterministicForSameSeedAndStream) {
  CounterRng a(42, 7), b(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(CounterRng, SeedsAndStreamsDiverge) {
  CounterRng a(1, 0), b(2, 0), c(1, 1);
  int same_seed = 0, same_stream = 0;
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    if (va == b()) ++same_seed;
    if (va == c()) ++same_stream;
  }
  EXPECT_LT(same_seed, 3);
  EXPECT_LT(same_stream, 3);
}

TEST(CounterRng, RandomAccessMatchesSequentialPerEvent) {
  // The defining property: event n's draws are a pure function of
  // (seed, stream, n), so visiting events in any order — or skipping
  // events entirely — reproduces the same per-event values.
  CounterRng sequential(99, 3);
  std::vector<std::uint64_t> first_draws(64);
  std::vector<double> uniforms(64);
  for (std::uint64_t e = 0; e < 64; ++e) {
    sequential.seek(e);
    first_draws[e] = sequential();
    uniforms[e] = sequential.uniform();
  }
  const CounterRng base(99, 3);
  // Shuffled subset, each event addressed directly via at().
  const std::uint64_t order[] = {63, 0, 17, 42, 5, 41, 63, 1, 30};
  for (const std::uint64_t e : order) {
    CounterRng view = base.at(e);
    EXPECT_EQ(view(), first_draws[e]) << "event " << e;
    EXPECT_EQ(view.uniform(), uniforms[e]) << "event " << e;
  }
}

TEST(CounterRng, SeekResetsDrawIndexAndNormalCache) {
  CounterRng rng(5, 0);
  rng.seek(10);
  const double n0 = rng.normal();  // caches the Box-Muller pair's second
  rng.seek(10);
  EXPECT_EQ(rng.normal(), n0);  // cache cleared, draws replay exactly
  EXPECT_EQ(rng.event(), 10u);
}

TEST(CounterRng, UniformInUnitInterval) {
  CounterRng rng(7, 0);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(CounterRng, UniformIntCoversRangeInclusive) {
  CounterRng rng(9, 0);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(CounterRng, UniformIntDegenerateAndExtremeRanges) {
  CounterRng rng(15, 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
  (void)rng.uniform_int(std::numeric_limits<std::int64_t>::min(),
                        std::numeric_limits<std::int64_t>::max());
}

TEST(CounterRng, NormalMomentsRoughlyStandard) {
  CounterRng rng(11, 0);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(mean(xs), 0.0, 0.05);
  EXPECT_NEAR(stddev(xs), 1.0, 0.05);
}

TEST(CounterRng, ChanceBoundariesAreDrawFree) {
  CounterRng rng(3, 0);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_EQ(rng.draw_index(), 0u);  // boundary probabilities draw nothing
}

// --- 4-wide Philox kernels (ISSUE 10) --------------------------------------

TEST(SimdPhilox, ScalarBatchMatchesCounterRngWordAt) {
  // The 4-wide body under a CounterRng-derived key must reproduce that
  // stream's word_at() (and hence at(event)'s first draws) exactly.
  const CounterRng stream(0xFEEDFACE, 5);
  const std::uint64_t c0[4] = {0, 1, 41, 0xFFFFFFFFFFFFFFFFull};
  const std::uint64_t c1[4] = {0, 7, 2, 0xFFFFFFFFFFFFFFFFull};
  std::uint64_t out[4];
  philox2x64x4_scalar(stream.key(), c0, c1, out);
  for (int lane = 0; lane < 4; ++lane) {
    EXPECT_EQ(out[lane], stream.word_at(c0[lane], c1[lane])) << lane;
  }
  // First draw of an event view is word_at(event, 0) is lane output.
  CounterRng view = stream.at(41);
  EXPECT_EQ(view(), stream.word_at(41, 0));
}

TEST(SimdPhilox, DispatchedKernelMatchesScalarReferenceFuzz) {
  // >= 1e6 (key, counter)-pair fuzz of whatever kernel philox4() resolved
  // to (the pipelined scalar body by default; the AVX2 body under
  // DPR_PHILOX_AVX2=1 when compiled + supported) against the shared
  // scalar philox2x64 reference. On a forced-scalar build
  // (-DDPR_ENABLE_AVX2=OFF) this degenerates to scalar-vs-scalar, which
  // still pins the 4-lane blocking logic.
  const Philox4Fn fn = philox4();
  ASSERT_NE(fn, nullptr);
  if (!philox4_simd_compiled()) {
    EXPECT_EQ(fn, &philox2x64x4_scalar);
  }
  Rng fuzz(20260808);
  std::uint64_t c0[4], c1[4], out[4];
  constexpr int kBlocks = 250000;  // 4 lanes each: 1e6 pairs
  for (int block = 0; block < kBlocks; ++block) {
    const std::uint64_t key = fuzz();
    for (int lane = 0; lane < 4; ++lane) {
      // Mix raw 64-bit values with small/boundary counters so carry
      // propagation in the vector mulhi path gets both regimes.
      c0[lane] = (block % 3 == 0) ? fuzz() : static_cast<std::uint64_t>(
                                                 fuzz() & 0xFF);
      c1[lane] = (block % 2 == 0) ? fuzz() : 0;
    }
    fn(key, c0, c1, out);
    for (int lane = 0; lane < 4; ++lane) {
      ASSERT_EQ(out[lane], philox2x64(key, c0[lane], c1[lane]))
          << "block " << block << " lane " << lane;
    }
  }
}

TEST(SimdPhilox, Avx2KernelMatchesScalarWhenRunnable) {
  // Directly fuzz the AVX2 body when this build carries one and the CPU
  // can run it; otherwise assert the stub contract.
  const Philox4Fn avx2 = philox4_avx2();
  if (!philox4_simd_compiled()) {
    EXPECT_EQ(avx2, nullptr);
    EXPECT_FALSE(philox4_simd_supported());
    GTEST_SKIP() << "build has no AVX2 Philox body";
  }
  ASSERT_NE(avx2, nullptr);
  if (!philox4_simd_supported()) GTEST_SKIP() << "CPU lacks AVX2";
  Rng fuzz(77001);
  std::uint64_t c0[4], c1[4], out[4], ref[4];
  for (int block = 0; block < 250000; ++block) {
    const std::uint64_t key = fuzz();
    for (int lane = 0; lane < 4; ++lane) {
      c0[lane] = fuzz();
      c1[lane] = fuzz();
    }
    avx2(key, c0, c1, out);
    philox2x64x4_scalar(key, c0, c1, ref);
    for (int lane = 0; lane < 4; ++lane) {
      ASSERT_EQ(out[lane], ref[lane]) << "block " << block << " lane "
                                      << lane;
    }
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, UniformIntDegenerateAndExtremeRanges) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
  // Full 64-bit span exercises the span == 0 wraparound branch.
  (void)rng.uniform_int(std::numeric_limits<std::int64_t>::min(),
                        std::numeric_limits<std::int64_t>::max());
}

TEST(Rng, UniformIntSmallRangeIsUnbiased) {
  // Rejection sampling: each residue of a non-power-of-two span must come
  // up at the expected rate. The old `x % span` draw is biased by only
  // ~2^-64 per residue — far too small to catch statistically — so this
  // guards the property test-style: a deliberately deterministic seed and
  // a tolerance a uniform generator meets with overwhelming probability.
  Rng rng(17);
  constexpr int kDraws = 60000;
  constexpr std::int64_t kSpan = 3;
  int counts[kSpan] = {0, 0, 0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_int(0, kSpan - 1)];
  for (int bucket = 0; bucket < kSpan; ++bucket) {
    EXPECT_NEAR(counts[bucket], kDraws / kSpan, kDraws / 100)
        << "bucket " << bucket;
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(mean(xs), 0.0, 0.05);
  EXPECT_NEAR(stddev(xs), 1.0, 0.05);
}

TEST(Rng, ChanceBoundaries) {
  Rng rng(13);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(21);
  Rng child = parent.fork();
  // Child continues differently from parent.
  EXPECT_NE(parent(), child());
}

TEST(SimClock, AdvanceAccumulates) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(5 * kMillisecond);
  clock.advance(20);
  EXPECT_EQ(clock.now(), 5020);
}

TEST(SimClock, AdvanceToNeverMovesBackwards) {
  SimClock clock;
  clock.advance_to(1000);
  clock.advance_to(500);
  EXPECT_EQ(clock.now(), 1000);
}

TEST(DeviceClock, OffsetApplied) {
  DeviceClock device(250, 0.0);
  EXPECT_EQ(device.local_time(1000), 1250);
  EXPECT_EQ(device.global_time(1250), 1000);
}

TEST(DeviceClock, DriftScalesTime) {
  DeviceClock device(0, 100.0);  // 100 ppm fast
  const SimTime one_hour = 3600 * kSecond;
  const SimTime local = device.local_time(one_hour);
  EXPECT_NEAR(static_cast<double>(local - one_hour), 0.36 * kSecond,
              1000.0);
  EXPECT_NEAR(static_cast<double>(device.global_time(local)),
              static_cast<double>(one_hour), 2.0);
}

TEST(Hex, RoundTrip) {
  const Bytes data{0x2F, 0x09, 0x50, 0x03, 0x05, 0x01, 0x00, 0x00};
  EXPECT_EQ(to_hex(data), "2F 09 50 03 05 01 00 00");
  EXPECT_EQ(from_hex("2F 09 50 03 05 01 00 00"), data);
}

TEST(Hex, ParsesLowercaseAndSeparators) {
  EXPECT_EQ(from_hex("de,ad be\tef"), (Bytes{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(Hex, RejectsMalformedInput) {
  EXPECT_THROW(from_hex("2"), std::invalid_argument);
  EXPECT_THROW(from_hex("GG"), std::invalid_argument);
}

TEST(Hex, U16Helpers) {
  Bytes out;
  append_u16(out, 0xF40D);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(read_u16(out, 0), 0xF40D);
}

TEST(Stats, MeanMedianOfKnownSeries) {
  std::vector<double> xs{1, 2, 3, 4, 100};
  EXPECT_DOUBLE_EQ(mean(xs), 22.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Stats, MedianEvenCount) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, MadRobustToOutlier) {
  std::vector<double> xs{10, 11, 12, 11, 10, 1000};
  EXPECT_LE(mad(xs), 1.0);
}

TEST(Stats, MaeAndMse) {
  std::vector<double> pred{1, 2, 3};
  std::vector<double> target{2, 2, 5};
  EXPECT_DOUBLE_EQ(mean_absolute_error(pred, target), 1.0);
  EXPECT_DOUBLE_EQ(mean_squared_error(pred, target), 5.0 / 3.0);
}

TEST(Stats, MaeAndMseMismatchedSizesAreNaN) {
  // Regression: a silent 0.0 here reads as a *perfect* score and lets a
  // caller bug win every fitness comparison.
  std::vector<double> pred{1, 2, 3};
  std::vector<double> target{1, 2};
  EXPECT_TRUE(std::isnan(mean_absolute_error(pred, target)));
  EXPECT_TRUE(std::isnan(mean_squared_error(pred, target)));
  std::vector<double> empty;
  EXPECT_TRUE(std::isnan(mean_absolute_error(pred, empty)));
  EXPECT_TRUE(std::isnan(mean_squared_error(empty, target)));
  // Two empty inputs agree vacuously.
  EXPECT_DOUBLE_EQ(mean_absolute_error(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(mean_squared_error(empty, empty), 0.0);
}

TEST(Stats, PearsonPerfectAndConstant) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> constant{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(xs, constant), 0.0);
}

// --- Durable atomic writes (ISSUE 9) ---------------------------------------

TEST(AtomicWrite, RoundTripsAndLeavesNoTempBehind) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("dpr_aw_" + std::to_string(static_cast<unsigned>(::getpid()))))
          .string();
  const Bytes data{0xDE, 0xAD, 0xBE, 0xEF};
  const auto io = write_file_atomic(path, data);
  ASSERT_TRUE(io);
  EXPECT_EQ(io.message(), "");
  const auto back = read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
  // The pid-unique temp file must never survive a successful rename.
  EXPECT_FALSE(std::filesystem::exists(
      path + ".tmp." + std::to_string(static_cast<unsigned>(::getpid()))));
  std::filesystem::remove(path);
}

TEST(AtomicWrite, FailureNamesTheStageAndErrno) {
  const Bytes data{0x01};
  const auto io =
      write_file_atomic("/nonexistent_dpr_dir/leaf/file.bin", data);
  EXPECT_FALSE(io);
  EXPECT_EQ(io.error, ENOENT);
  EXPECT_STREQ(io.stage, "open_tmp");
  EXPECT_NE(io.message().find("open_tmp"), std::string::npos);
}

TEST(IoResult, ConvertsLikeTheOldBoolApi) {
  EXPECT_TRUE(IoResult::success());
  const auto failed = IoResult::failure("rename", EACCES);
  EXPECT_FALSE(failed);
  EXPECT_EQ(failed.error, EACCES);
  EXPECT_NE(failed.message().find("rename"), std::string::npos);
}

// --- Crash-point registry (ISSUE 9) ----------------------------------------

TEST(CrashPoints, RegistryRejectsUnknownSitesAndZeroCounts) {
  EXPECT_FALSE(arm_crash_point("no.such.site", 1));
  EXPECT_FALSE(arm_crash_point("ckpt.pre_save", 0));
  EXPECT_FALSE(arm_crash_point_spec("ckpt.pre_save:"));
  EXPECT_FALSE(arm_crash_point_spec("ckpt.pre_save:12x"));
  EXPECT_FALSE(arm_crash_point_spec(":3"));
  EXPECT_TRUE(arm_crash_point_spec("ckpt.pre_save:3"));
  disarm_crash_points();
}

TEST(CrashPoints, SitesAreListedAndDisarmedByDefault) {
  const auto sites = crash_point_sites();
  EXPECT_GE(sites.size(), 10u);
  for (const char* site : sites) {
    EXPECT_TRUE(arm_crash_point(site, 100)) << site;
  }
  disarm_crash_points();
  EXPECT_FALSE(detail::crash_points_active.load());
}

TEST(CrashPoints, CountingTalliesHitsWithoutCrashing) {
  set_crash_point_counting(true);
  reset_crash_point_hits();
  DPR_CRASH_POINT("ckpt.pre_save");
  DPR_CRASH_POINT("ckpt.pre_save");
  DPR_CRASH_POINT("ckpt.pre_rename");
  set_crash_point_counting(false);
  EXPECT_EQ(crash_point_hits("ckpt.pre_save"), 2u);
  EXPECT_EQ(crash_point_hits("ckpt.pre_rename"), 1u);
  EXPECT_EQ(crash_point_hits("ckpt.post_rename"), 0u);
  EXPECT_EQ(crash_point_hits("no.such.site"), 0u);
  reset_crash_point_hits();
  EXPECT_EQ(crash_point_hits("ckpt.pre_save"), 0u);
  // With counting off and nothing armed the fast path is fully idle.
  EXPECT_FALSE(detail::crash_points_active.load());
  DPR_CRASH_POINT("ckpt.pre_save");
  EXPECT_EQ(crash_point_hits("ckpt.pre_save"), 0u);
}

TEST(CrashPointDeathTest, ArmedSiteExitsOnTheNthHit) {
  EXPECT_EXIT(
      {
        arm_crash_point("ckpt.pre_rename", 2);
        DPR_CRASH_POINT("ckpt.pre_rename");  // hit 1: survives
        DPR_CRASH_POINT("ckpt.pre_rename");  // hit 2: _exit(86)
      },
      ::testing::ExitedWithCode(kCrashExitCode), "");
  // An armed site other than the one being hit never fires.
  arm_crash_point("ckpt.pre_rename", 1);
  DPR_CRASH_POINT("ckpt.post_rename");
  disarm_crash_points();
}

}  // namespace
}  // namespace dpr::util
