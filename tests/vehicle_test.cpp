#include <gtest/gtest.h>

#include <set>

#include "can/bus.hpp"
#include "isotp/endpoint.hpp"
#include "uds/client.hpp"
#include "vehicle/actuator.hpp"
#include "vehicle/catalog.hpp"
#include "vehicle/formula.hpp"
#include "vehicle/signal.hpp"
#include "vehicle/vehicle.hpp"

namespace dpr::vehicle {
namespace {

TEST(Formula, LinearOverCombinedBytes) {
  const auto f = PropFormula::linear(0.25, 0.0);
  EXPECT_DOUBLE_EQ(f.eval(util::Bytes{0x1A, 0xF8}), (0x1A * 256.0 + 0xF8) * 0.25);
}

TEST(Formula, TwoByteForm) {
  const auto f = PropFormula::two_byte(64.1, 0.241);
  EXPECT_NEAR(f.eval(util::Bytes{10, 100}), 64.1 * 10 + 0.241 * 100, 1e-9);
}

TEST(Formula, ProductForm) {
  const auto f = PropFormula::product(0.2);
  EXPECT_DOUBLE_EQ(f.eval(util::Bytes{0xF1, 0x10}), 241 * 16 * 0.2);
}

TEST(Formula, QuadraticForm) {
  const auto f = PropFormula::quadratic(0.004, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(f.eval(util::Bytes{100}), 40.0);
}

TEST(Formula, EnumPassesRawThrough) {
  const auto f = PropFormula::enumeration();
  EXPECT_TRUE(f.is_enum());
  EXPECT_DOUBLE_EQ(f.eval(util::Bytes{0x02}), 2.0);
}

TEST(Formula, ReprIsReadable) {
  EXPECT_EQ(PropFormula::linear(0.1, -40.0).repr(), "Y = 0.1*X - 40");
  EXPECT_EQ(PropFormula::linear(1.0).repr(), "Y = X");
}

TEST(Signal, ConstantPatternNeverMoves) {
  RawSignal sig(RawSignal::Pattern::kConstant, 50, 200, util::Rng(1));
  const auto first = sig.sample(0);
  for (util::SimTime t = 0; t < 10 * util::kSecond; t += 100000) {
    EXPECT_EQ(sig.sample(t), first);
  }
}

TEST(Signal, WalkStaysInBounds) {
  RawSignal sig(RawSignal::Pattern::kRandomWalk, 10, 90, util::Rng(2));
  for (util::SimTime t = 0; t < 30 * util::kSecond; t += 50000) {
    const auto v = sig.sample(t);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 90u);
  }
}

TEST(Signal, SineSweepsRange) {
  RawSignal sig(RawSignal::Pattern::kSine, 0, 100, util::Rng(3), 4.0);
  std::uint32_t lo = 100, hi = 0;
  for (util::SimTime t = 0; t < 8 * util::kSecond; t += 50000) {
    const auto v = sig.sample(t);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 15u);
  EXPECT_GT(hi, 85u);
}

TEST(Signal, StableWithinRefreshTick) {
  RawSignal sig(RawSignal::Pattern::kRandomWalk, 0, 255, util::Rng(4));
  EXPECT_EQ(sig.sample(1000), sig.sample(2000));  // same 50 ms tick
}

TEST(Signal, RawToBytesBigEndian) {
  EXPECT_EQ(raw_to_bytes(0x1AF8, 2), (std::vector<std::uint8_t>{0x1A, 0xF8}));
  EXPECT_EQ(raw_to_bytes(0x21, 1), (std::vector<std::uint8_t>{0x21}));
}

TEST(Actuator, ThreeMessagePattern) {
  Actuator act("Fog Light Left");
  EXPECT_TRUE(act.apply(0x02, {}).has_value());  // freeze
  EXPECT_EQ(act.phase(), Actuator::Phase::kFrozen);
  const util::Bytes state{0x05, 0x01, 0x00, 0x00};
  EXPECT_TRUE(act.apply(0x03, state).has_value());
  EXPECT_TRUE(act.active());
  EXPECT_EQ(act.control_state(), state);
  EXPECT_TRUE(act.apply(0x00, {}).has_value());
  EXPECT_EQ(act.phase(), Actuator::Phase::kEcuControlled);
  EXPECT_EQ(act.activations(), 1u);
}

TEST(Actuator, AdjustmentWithoutFreezeRejected) {
  Actuator act("Horn");
  EXPECT_EQ(act.apply(0x03, util::Bytes{0x01}), std::nullopt);
  EXPECT_EQ(act.activations(), 0u);
}

TEST(Actuator, UnknownParameterRejected) {
  Actuator act("Horn");
  EXPECT_EQ(act.apply(0x47, {}), std::nullopt);
}

TEST(Catalog, HasEighteenCars) {
  EXPECT_EQ(catalog().size(), 18u);
}

TEST(Catalog, Table6CountsMatchPaper) {
  // Spot checks against Table 6 / Table 3.
  EXPECT_EQ(car_spec(CarId::kA).formula_esv_count, 28u);
  EXPECT_EQ(car_spec(CarId::kA).model, "Skoda Octavia");
  EXPECT_EQ(car_spec(CarId::kK).formula_esv_count, 41u);
  EXPECT_EQ(car_spec(CarId::kG).enum_esv_count, 22u);
  EXPECT_EQ(car_spec(CarId::kR).formula_esv_count, 40u);

  std::size_t formulas = 0, enums = 0, ecrs = 0;
  for (const auto& spec : catalog()) {
    formulas += spec.formula_esv_count;
    enums += spec.enum_esv_count;
    ecrs += spec.ecr_count;
  }
  EXPECT_EQ(formulas, 290u);  // Table 6 total
  EXPECT_EQ(enums, 156u);     // Table 6 total
  EXPECT_EQ(ecrs, 124u);      // Table 11 total
}

TEST(Catalog, SignalCountsMatchDeclaredTotals) {
  for (const auto& spec : catalog()) {
    std::size_t formulas = 0, enums = 0, actuators = 0;
    for (const auto& ecu : spec.ecus) {
      for (const auto& sig : ecu.uds_signals) {
        (sig.formula.is_enum() ? enums : formulas) += 1;
      }
      for (const auto& block : ecu.kwp_local_ids) {
        for (const auto& esv : block.esvs) {
          (esv.is_enum ? enums : formulas) += 1;
        }
      }
      actuators += ecu.actuators.size();
    }
    EXPECT_EQ(formulas, spec.formula_esv_count) << spec.label;
    EXPECT_EQ(enums, spec.enum_esv_count) << spec.label;
    EXPECT_GE(actuators, spec.ecr_count) << spec.label;
  }
}

TEST(Catalog, ProtocolAssignmentsMatchTable3) {
  EXPECT_EQ(car_spec(CarId::kB).protocol, Protocol::kKwp2000);
  EXPECT_EQ(car_spec(CarId::kB).transport, TransportKind::kVwTp20);
  EXPECT_EQ(car_spec(CarId::kG).transport, TransportKind::kBmwFraming);
  EXPECT_EQ(car_spec(CarId::kL).protocol, Protocol::kUds);
  EXPECT_EQ(car_spec(CarId::kK).protocol, Protocol::kKwp2000);
}

TEST(Catalog, DidsUniquePerCar) {
  for (const auto& spec : catalog()) {
    std::set<uds::Did> seen;
    for (const auto& ecu : spec.ecus) {
      for (const auto& sig : ecu.uds_signals) {
        EXPECT_TRUE(seen.insert(sig.did).second)
            << spec.label << " duplicate DID " << sig.did;
      }
    }
  }
}

TEST(Catalog, Table7DashboardSignalsPresent) {
  // Table 7 validation signals must exist with the right formulas.
  bool found_r = false;
  for (const auto& ecu : car_spec(CarId::kR).ecus) {
    for (const auto& sig : ecu.uds_signals) {
      if (sig.name == "Engine Speed" &&
          sig.formula.kind() == PropFormula::Kind::kTwoByte) {
        found_r = true;
        EXPECT_NEAR(sig.formula.a(), 64.1, 1e-9);
        EXPECT_NEAR(sig.formula.b(), 0.241, 1e-9);
      }
    }
  }
  EXPECT_TRUE(found_r);
}

TEST(VehicleSim, RespondsToUdsReads) {
  util::SimClock clock;
  can::CanBus bus(clock);
  Vehicle vehicle(CarId::kA, bus, clock);
  const auto& sig = vehicle.spec().ecus[0].uds_signals[0];

  isotp::Endpoint tester(
      bus,
      isotp::EndpointConfig{can::CanId{vehicle.spec().ecus[0].request_id,
                                       false},
                            can::CanId{vehicle.spec().ecus[0].response_id,
                                       false}});
  uds::Client client(tester, [&] { bus.deliver_pending(); });
  const std::vector<uds::Did> dids{sig.did};
  const auto records = client.read_data(
      dids, [&](uds::Did) { return std::optional<std::size_t>(sig.data_bytes); });
  ASSERT_TRUE(records.has_value());
  ASSERT_EQ(records->size(), 1u);
  // The returned raw bytes decode to the ground-truth physical value.
  const auto physical = vehicle.physical_value(sig.did);
  ASSERT_TRUE(physical.has_value());
  EXPECT_NEAR(sig.formula.eval((*records)[0].data), *physical, 1e-9);
}

TEST(VehicleSim, DashboardValueMatchesSignal) {
  util::SimClock clock;
  can::CanBus bus(clock);
  Vehicle vehicle(CarId::kL, bus, clock);
  const auto value = vehicle.dashboard_value("Coolant Temperature");
  ASSERT_TRUE(value.has_value());
  EXPECT_GE(*value, 0.0);
  EXPECT_LE(*value, 150.0);
}

TEST(VehicleSim, FindEcuHelpers) {
  util::SimClock clock;
  can::CanBus bus(clock);
  Vehicle vehicle(CarId::kN, bus, clock);
  // Kia's Table 13 actuator.
  EXPECT_NE(vehicle.find_ecu_with_actuator(0xB003), nullptr);
  EXPECT_EQ(vehicle.find_ecu_with_actuator(0xFFFF), nullptr);
}

}  // namespace
}  // namespace dpr::vehicle
