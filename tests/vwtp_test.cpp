#include <gtest/gtest.h>

#include "can/bus.hpp"
#include "vwtp/channel.hpp"
#include "vwtp/vwtp.hpp"

namespace dpr::vwtp {
namespace {

can::CanId id(std::uint32_t v) { return can::CanId{v, false}; }

util::Bytes payload_of(std::size_t n) {
  util::Bytes p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint8_t>(i);
  return p;
}

TEST(Classify, DataAndAckFrames) {
  EXPECT_EQ(classify(can::CanFrame(0x300, {0x20, 0x21, 0x07})),
            FrameKind::kData);
  EXPECT_EQ(classify(can::CanFrame(0x300, {0x11, 0x61, 0x01})),
            FrameKind::kData);
  EXPECT_EQ(classify(can::CanFrame(0x300, {0x91})), FrameKind::kAck);
  EXPECT_EQ(classify(can::CanFrame(0x300, {0xB2})), FrameKind::kAck);
}

TEST(Classify, ControlFrames) {
  EXPECT_EQ(classify(can::CanFrame(0x300, {0xA0, 0x0F, 0x8A, 0xFF, 0x32,
                                           0xFF})),
            FrameKind::kChannelParamsRequest);
  EXPECT_EQ(classify(can::CanFrame(0x300, {0xA1, 0x0F, 0x8A, 0xFF, 0x32,
                                           0xFF})),
            FrameKind::kChannelParamsResponse);
  EXPECT_EQ(classify(can::CanFrame(0x300, {0xA8})), FrameKind::kDisconnect);
  EXPECT_EQ(classify(can::CanFrame(0x300, {0xA3})), FrameKind::kBreak);
}

TEST(Classify, SetupFramesOnBroadcast) {
  const auto request = encode_setup_request(0x01, id(0x300));
  EXPECT_EQ(classify(request), FrameKind::kChannelSetupRequest);
  const auto response = encode_setup_response(0x01, id(0x740), id(0x300));
  EXPECT_EQ(classify(response), FrameKind::kChannelSetupResponse);
}

TEST(Classify, ControlScreening) {
  EXPECT_TRUE(is_control_frame(FrameKind::kAck));
  EXPECT_TRUE(is_control_frame(FrameKind::kChannelSetupRequest));
  EXPECT_TRUE(is_control_frame(FrameKind::kDisconnect));
  EXPECT_FALSE(is_control_frame(FrameKind::kData));
}

TEST(DataFrames, LastFlagSemantics) {
  EXPECT_TRUE(is_last(DataOp::kLastExpectAck));
  EXPECT_TRUE(is_last(DataOp::kLastNoAck));
  EXPECT_FALSE(is_last(DataOp::kMoreNoAck));
  EXPECT_TRUE(expects_ack(DataOp::kLastExpectAck));
  EXPECT_FALSE(expects_ack(DataOp::kMoreNoAck));
}

TEST(SegmentMessage, LastFrameMarked) {
  const auto frames = segment_message(id(0x740), payload_of(20));
  ASSERT_EQ(frames.size(), 3u);
  auto info0 = decode_data(frames[0]);
  auto info2 = decode_data(frames[2]);
  ASSERT_TRUE(info0 && info2);
  EXPECT_FALSE(is_last(info0->op));
  EXPECT_TRUE(is_last(info2->op));
  EXPECT_EQ(info0->sequence, 0);
  EXPECT_EQ(info2->sequence, 2);
}

TEST(SegmentMessage, RejectsEmpty) {
  EXPECT_THROW(segment_message(id(0x740), {}), std::invalid_argument);
}

class VwtpRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VwtpRoundTrip, ReassemblesWithoutLengthField) {
  const auto payload = payload_of(GetParam());
  Reassembler reassembler;
  std::optional<util::Bytes> result;
  for (const auto& frame : segment_message(id(0x740), payload)) {
    result = reassembler.feed(frame);
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, payload);
}

INSTANTIATE_TEST_SUITE_P(PayloadLengths, VwtpRoundTrip,
                         ::testing::Values(1, 6, 7, 8, 14, 15, 50, 111,
                                           200));

TEST(Reassembler, SequenceGapDetected) {
  const auto frames = segment_message(id(0x740), payload_of(30));
  Reassembler reassembler;
  reassembler.feed(frames[0]);
  reassembler.feed(frames[2]);
  EXPECT_EQ(reassembler.sequence_errors(), 1u);
}

TEST(Reassembler, IgnoresControlFrames) {
  Reassembler reassembler;
  EXPECT_EQ(reassembler.feed(can::CanFrame(0x300, {0xA8})), std::nullopt);
  EXPECT_EQ(reassembler.feed(can::CanFrame(0x300, {0x91})), std::nullopt);
}

TEST(Setup, ResponseRoundTrip) {
  const auto response = encode_setup_response(0x01, id(0x740), id(0x300));
  const auto result = decode_setup_response(response);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->tester_tx.value, 0x740u);
  EXPECT_EQ(result->tester_rx.value, 0x300u);
}

TEST(Channel, BidirectionalMessages) {
  util::SimClock clock;
  can::CanBus bus(clock);
  Channel tester(bus, ChannelConfig{id(0x740), id(0x300)});
  Channel ecu(bus, ChannelConfig{id(0x300), id(0x740)});

  util::Bytes at_ecu, at_tester;
  ecu.set_message_handler([&](const util::Bytes& m) {
    at_ecu = m;
    util::Bytes reply(25, 0x61);
    ecu.send(reply);
  });
  tester.set_message_handler([&](const util::Bytes& m) { at_tester = m; });

  tester.send(payload_of(40));
  bus.deliver_pending();
  EXPECT_EQ(at_ecu, payload_of(40));
  EXPECT_EQ(at_tester.size(), 25u);
  EXPECT_GE(tester.stats().acks_received, 1u);
  EXPECT_GE(ecu.stats().acks_sent, 1u);
}

TEST(Channel, ParamsNegotiationEchoed) {
  util::SimClock clock;
  can::CanBus bus(clock);
  Channel ecu(bus, ChannelConfig{id(0x300), id(0x740)});
  std::vector<can::CanFrame> on_bus;
  bus.attach([&](const can::CanFrame& f, util::SimTime) {
    on_bus.push_back(f);
  });
  bus.send(can::CanFrame(0x740, {0xA0, 0x0F, 0x8A, 0xFF, 0x32, 0xFF}));
  bus.deliver_pending();
  ASSERT_EQ(on_bus.size(), 2u);
  EXPECT_EQ(on_bus[1].byte(0), 0xA1);
  EXPECT_EQ(on_bus[1].id().value, 0x300u);
}

TEST(Channel, SequenceNumbersContinueAcrossMessages) {
  util::SimClock clock;
  can::CanBus bus(clock);
  Channel tester(bus, ChannelConfig{id(0x740), id(0x300)});
  Channel ecu(bus, ChannelConfig{id(0x300), id(0x740)});
  std::vector<util::Bytes> received;
  ecu.set_message_handler(
      [&](const util::Bytes& m) { received.push_back(m); });
  tester.send(payload_of(10));  // 2 frames: seq 0,1
  bus.deliver_pending();
  tester.send(payload_of(10));  // seq 2,3 — receiver must accept
  bus.deliver_pending();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[1], payload_of(10));
}

}  // namespace
}  // namespace dpr::vwtp
