// dpreverser — command-line front end for the reverse-engineering
// pipeline: run a campaign against one simulated vehicle (or the whole
// fleet), print the recovered protocol map, optionally export the raw
// CAN capture.
//
// Usage:
//   dpreverser --car A [--window 16] [--seed N] [--no-filter]
//              [--no-ocr-noise] [--no-baselines] [--trace capture.log]
//   dpreverser --fleet [--fleet-threads N] [common options]
//   dpreverser --generate 64 [--gen-seed S] [common options]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "can/trace.hpp"
#include "core/fleet.hpp"
#include "gp/kernels.hpp"
#include "util/crash.hpp"
#include "vehicle/generator.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: dpreverser --car <A..R> [options]\n"
               "       dpreverser --fleet [options]\n"
               "       dpreverser --generate <n> [--gen-seed <s>] [options]\n"
               "  --fleet          run every catalog car (campaigns fan out\n"
               "                   over a shared-budget pool; results are\n"
               "                   identical to the serial loop)\n"
               "  --generate <n>   synthesize n vehicles procedurally and run\n"
               "                   a campaign against each; same (n, gen-seed)\n"
               "                   always yields the same fleet\n"
               "  --gen-seed <s>   generator seed for --generate (default 1;\n"
               "                   car k uses seed s+k)\n"
               "  --fleet-threads <n>  concurrent campaigns in --fleet and\n"
               "                   --generate modes\n"
               "                   (0 = all cores, default 0; 1 = serial)\n"
               "  --window <s>     live-capture window per ECU (default 16)\n"
               "  --seed <n>       simulation seed\n"
               "  --threads <n>    GP inference threads (0 = all cores,\n"
               "                   default 0; results identical for any n)\n"
               "  --fault-rate <r> inject deterministic bus/server faults at\n"
               "                   rate r (0..1, default 0 = lossless); the\n"
               "                   clients retry/back off per ISO 14229-2\n"
               "  --fault-seed <n> fault stream seed (replays bit-identically\n"
               "                   for the same seed at any thread count)\n"
               "  --reset-rate <r> per-request chance of a spontaneous ECU\n"
               "                   reboot (session + security wiped, bus\n"
               "                   silent for the boot window)\n"
               "  --session-faults arm S3 session timers + the tool's\n"
               "                   keepalive/recovery supervisor\n"
               "  --nm             arm OSEK network management: per-ECU ring\n"
               "                   nodes, coordinated bus sleep/wakeup and an\n"
               "                   NM-aware tool that keeps the bus alive\n"
               "  --nm-sleep-timeout <s>  quiet-bus seconds before the ring\n"
               "                   agrees to sleep (default 3)\n"
               "  --nm-oblivious   keep the vehicle ringing but leave the\n"
               "                   tool NM-ignorant (ablation: transactions\n"
               "                   die against the sleeping bus)\n"
               "  --nm-veto <a>    NM veto holdout: the ring node at 1-based\n"
               "                   ECU address a never acks sleep, so the bus\n"
               "                   stays awake for the whole campaign\n"
               "  --sim-deadline <s>  sim-time budget per phase (same\n"
               "                   phase_timeout failure as --phase-deadline\n"
               "                   but in simulated seconds)\n"
               "  --checkpoint-dir <d>  write a per-phase checkpoint per car\n"
               "                   so an interrupted run can be resumed\n"
               "  --resume         resume from matching checkpoints (same\n"
               "                   car, seed and options); the resumed\n"
               "                   report is bit-identical to a fresh run.\n"
               "                   Old-format checkpoints (v2/v3/v4) migrate\n"
               "                   in place; torn/corrupt files are moved to\n"
               "                   <dir>/quarantine with a reason logged and\n"
               "                   the affected phases re-run\n"
               "  --crash-at <site[:n]>  deterministic crash injection: the\n"
               "                   n-th hit (default 1) of the named crash\n"
               "                   point _exit(86)s the process; see\n"
               "                   --list-crash-points (bench_crash sweeps\n"
               "                   every site and checks resume equality)\n"
               "  --list-crash-points  list crash-point sites and exit\n"
               "  --phase-deadline <s>  wall-clock budget per phase; an\n"
               "                   overrunning phase becomes a failed car\n"
               "                   slot (phase_timeout) instead of a hang\n"
               "  --stall-phase <p>  test hook: hang at the start of phase p\n"
               "                   (collect..score) until the watchdog fires\n"
               "  --signature <file>  write the run's deterministic report\n"
               "                   signature (CI compares fresh vs resumed)\n"
               "  --tree-eval      score GP fitness with the legacy recursive\n"
               "                   tree walker instead of the bytecode tape\n"
               "                   (bit-identical results; equivalence switch)\n"
               "  --scalar-tape    disable the AVX2 tape kernels and evaluate\n"
               "                   with the portable scalar kernels\n"
               "                   (bit-identical results; equivalence switch)\n"
               "  --legacy-bus     deliver through the pre-overhaul bus hot\n"
               "                   path: arbitration scan, full fan-out,\n"
               "                   scalar fault draws, per-step UI rebuild\n"
               "                   (bit-identical results; equivalence switch)\n"
               "  --no-filter      disable the two-stage ESV filter (ablation)\n"
               "  --no-ocr-noise   perfect OCR (clean-room ablation)\n"
               "  --no-baselines   skip linear/polynomial baselines\n"
               "  --trace <file>   export the sniffed CAN capture\n"
               "  --list           list the vehicle catalog and exit\n");
}

void write_signature(const std::string& path, const std::string& signature) {
  std::ofstream out(path);
  out << signature;
  std::printf("signature written to %s\n", path.c_str());
}

int run_fleet(const std::vector<dpr::vehicle::CarSpec>& specs,
              dpr::core::CampaignOptions campaign_options,
              std::size_t fleet_threads, const std::string& signature_path) {
  using namespace dpr;
  core::FleetOptions options;
  options.campaign = campaign_options;
  options.fleet_threads = fleet_threads;

  const core::FleetRunner runner(options);
  std::printf("running %zu campaigns on %zu fleet threads...\n",
              specs.size(), runner.threads());
  const auto summary = runner.run(specs);

  std::printf("\n%-8s %-22s %-10s %-7s %-9s %-8s %-7s %-6s %-9s\n", "Car",
              "Model", "Protocol", "Status", "#signals", "#formula",
              "GP ok", "#ECR", "infer s");
  for (std::size_t i = 0; i < summary.reports.size(); ++i) {
    const auto& report = summary.reports[i];
    const auto& spec = specs[i];
    std::printf("%-8s %-22s %-10s %-7s %-9zu %-8zu %-7zu %-6zu %-9.2f\n",
                report.car_label.c_str(), spec.model.c_str(),
                spec.protocol == vehicle::Protocol::kUds ? "UDS" : "KWP",
                report.completed ? "ok" : "FAILED", report.signals.size(),
                report.formula_signals(), report.gp_correct(),
                report.ecrs.size(), report.phases.infer_s);
    if (!report.completed) {
      std::printf("         ^ %s\n", report.failure_reason.c_str());
    }
  }
  std::printf("\nfleet totals: %zu reads + %zu controls = %zu messages, "
              "GP %zu/%zu; cars ok %zu / failed %zu\n",
              summary.total_signals(), summary.total_ecrs(),
              summary.total_signals() + summary.total_ecrs(),
              summary.total_gp_correct(), summary.total_formula_signals(),
              summary.cars_ok(), summary.cars_failed());
  if (campaign_options.faults.enabled()) {
    const auto tx = summary.total_transactions();
    std::printf("fault resilience: %llu transactions, %llu retries, "
                "%llu busy retries, %llu pending waits, %llu failures\n",
                static_cast<unsigned long long>(tx.transactions),
                static_cast<unsigned long long>(tx.retries),
                static_cast<unsigned long long>(tx.busy_retries),
                static_cast<unsigned long long>(tx.pending_waits),
                static_cast<unsigned long long>(tx.failures));
  }
  if (!campaign_options.checkpoint_dir.empty() &&
      (summary.ckpt_salvaged > 0 || summary.ckpt_quarantined > 0)) {
    std::printf("checkpoint store: ckpt_salvaged=%zu ckpt_quarantined=%zu\n",
                summary.ckpt_salvaged, summary.ckpt_quarantined);
  }
  std::printf("wall time %.2f s (%zu threads); phase CPU-s: collect %.1f, "
              "infer %.1f, other %.1f\n",
              summary.wall_s, summary.threads_used,
              summary.phase_totals.collect_s, summary.phase_totals.infer_s,
              summary.phase_totals.total_s() -
                  summary.phase_totals.collect_s -
                  summary.phase_totals.infer_s);
  if (!signature_path.empty()) {
    write_signature(signature_path, core::fleet_signature(summary));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpr;

  int car_index = -1;
  bool fleet = false;
  std::size_t generate_count = 0;
  std::uint64_t gen_seed = 1;
  std::size_t fleet_threads = 0;
  core::CampaignOptions options;
  options.live_window = 16 * util::kSecond;
  options.video_fps = 10.0;
  options.gp.population = 192;
  options.infer_threads = 0;  // fan per-signal GP over all cores
  std::string trace_path;
  std::string signature_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--car") {
      const char* value = next();
      if (std::strlen(value) == 1 && value[0] >= 'A' && value[0] <= 'R') {
        car_index = value[0] - 'A';
      }
    } else if (arg == "--fleet") {
      fleet = true;
    } else if (arg == "--generate") {
      generate_count = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--gen-seed") {
      gen_seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--fleet-threads") {
      fleet_threads = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--window") {
      options.live_window =
          static_cast<util::SimTime>(std::atof(next()) * util::kSecond);
    } else if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--fault-rate") {
      options.faults.rate = std::atof(next());
    } else if (arg == "--fault-seed") {
      options.faults.fault_seed =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--reset-rate") {
      options.faults.reset_rate = std::atof(next());
    } else if (arg == "--session-faults") {
      options.faults.session_faults = true;
    } else if (arg == "--nm") {
      options.faults.nm = true;
    } else if (arg == "--nm-sleep-timeout") {
      options.faults.nm_sleep_timeout =
          static_cast<util::SimTime>(std::atof(next()) * util::kSecond);
    } else if (arg == "--nm-oblivious") {
      options.nm_oblivious = true;
    } else if (arg == "--nm-veto") {
      options.faults.nm_veto_address =
          static_cast<std::uint8_t>(std::atoi(next()));
    } else if (arg == "--crash-at") {
      const char* spec = next();
      if (!util::arm_crash_point_spec(spec)) {
        std::fprintf(stderr,
                     "unknown crash point spec '%s' "
                     "(see --list-crash-points)\n",
                     spec);
        return 2;
      }
    } else if (arg == "--list-crash-points") {
      for (const char* site : util::crash_point_sites()) {
        std::printf("%s\n", site);
      }
      return 0;
    } else if (arg == "--sim-deadline") {
      options.phase_sim_budget_s = std::atof(next());
    } else if (arg == "--checkpoint-dir") {
      options.checkpoint_dir = next();
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--phase-deadline") {
      options.phase_deadline_s = std::atof(next());
    } else if (arg == "--stall-phase") {
      options.stall_phase = next();
    } else if (arg == "--signature") {
      signature_path = next();
    } else if (arg == "--threads") {
      options.infer_threads =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--tree-eval") {
      options.gp.use_tape = false;
    } else if (arg == "--scalar-tape") {
      gp::set_simd_enabled(false);
    } else if (arg == "--legacy-bus") {
      options.legacy_bus = true;
    } else if (arg == "--no-filter") {
      options.two_stage_filter = false;
    } else if (arg == "--no-ocr-noise") {
      options.ocr_noise = false;
    } else if (arg == "--no-baselines") {
      options.run_baselines = false;
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--list") {
      for (const auto& spec : vehicle::catalog()) {
        std::printf("%s  %-22s %-9s %-12s tool: %s\n", spec.label.c_str(),
                    spec.model.c_str(),
                    spec.protocol == vehicle::Protocol::kUds ? "UDS"
                                                             : "KWP 2000",
                    spec.transport == vehicle::TransportKind::kIsoTp
                        ? "ISO-TP"
                        : spec.transport == vehicle::TransportKind::kVwTp20
                              ? "VW TP 2.0"
                              : "BMW framing",
                    spec.tool.c_str());
      }
      return 0;
    } else {
      usage();
      return 2;
    }
  }
  if (generate_count > 0) {
    const auto specs =
        vehicle::generate_fleet(vehicle::GeneratorConfig{}, gen_seed,
                                generate_count);
    return run_fleet(specs, options, fleet_threads, signature_path);
  }
  if (fleet) {
    return run_fleet(vehicle::catalog(), options, fleet_threads,
                     signature_path);
  }
  if (car_index < 0) {
    usage();
    return 2;
  }

  core::Campaign campaign(static_cast<vehicle::CarId>(car_index), options);
  std::printf("collecting from %s (%s, tool %s)...\n",
              campaign.report().car_label.c_str(),
              campaign.vehicle().spec().model.c_str(),
              campaign.vehicle().spec().tool.c_str());
  try {
    campaign.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign failed: %s\n", e.what());
    return 1;
  }
  std::printf("  %zu CAN frames, %zu video frames captured\n",
              campaign.capture().size(), campaign.video().frames.size());

  const auto& report = campaign.report();
  if (!signature_path.empty()) {
    write_signature(signature_path, core::report_signature(report));
  }
  std::printf("\nalignment offset %lld us (%zu anchors); %zu messages "
              "assembled\n",
              static_cast<long long>(report.alignment_offset),
              report.alignment_anchors, report.messages_assembled);

  std::printf("\nREAD MESSAGES (%zu formula / %zu enum):\n",
              report.formula_signals(), report.enum_signals());
  for (const auto& s : report.signals) {
    if (s.is_enum) {
      std::printf("  [%s] %-34s (status/enum)\n", s.request_message.c_str(),
                  s.semantic_name.c_str());
    } else {
      std::printf("  [%s] %-34s %s%s\n", s.request_message.c_str(),
                  s.semantic_name.c_str(),
                  s.gp ? s.gp->formula.c_str() : "(no formula)",
                  s.gp_correct ? "" : "   [unverified]");
    }
  }
  std::printf("\nCONTROL MESSAGES (%zu):\n", report.ecrs.size());
  for (const auto& e : report.ecrs) {
    std::printf("  [%s %04X] %-30s state %s%s\n", e.is_uds ? "2F" : "30",
                e.id, e.semantic_name.c_str(),
                util::to_hex(e.adjustment_state).c_str(),
                e.three_message_pattern ? "" : "   [no 3-msg pattern]");
  }
  std::printf("\nGP precision: %zu/%zu", report.gp_correct(),
              report.formula_signals());
  if (options.run_baselines) {
    std::printf("   (linear %zu, polynomial %zu)",
                report.linear_correct(), report.polynomial_correct());
  }
  std::printf("\n");

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    can::write_trace(out, campaign.capture());
    std::printf("capture written to %s\n", trace_path.c_str());
  }
  return 0;
}
